package device

import "github.com/memtest/partialfaults/internal/circuit"

// VSource is an independent voltage source from node p (positive) to
// node n (negative) driven by a Waveform. It contributes one branch
// current unknown to the MNA system.
type VSource struct {
	name   string
	p, n   int
	wave   Waveform
	branch int
}

// NewVSource creates a voltage source; the node voltage difference
// v(p) − v(n) is forced to wave.At(t).
func NewVSource(name string, p, n int, wave Waveform) *VSource {
	if wave == nil {
		panic("device: VSource requires a waveform")
	}
	return &VSource{name: name, p: p, n: n, wave: wave}
}

// Name implements circuit.Element.
func (v *VSource) Name() string { return v.name }

// SetBranch implements circuit.BranchElement.
func (v *VSource) SetBranch(idx int) { v.branch = idx }

// SetWaveform replaces the driving waveform. The DRAM operation
// controller uses this to schedule control signals between operations.
func (v *VSource) SetWaveform(w Waveform) {
	if w == nil {
		panic("device: VSource requires a waveform")
	}
	v.wave = w
}

// Waveform returns the current driving waveform.
func (v *VSource) Waveform() Waveform { return v.wave }

// Stamp implements circuit.Element with the standard voltage-source MNA
// pattern: the branch current enters the node equations and the branch
// equation forces v(p) − v(n) = V(t).
func (v *VSource) Stamp(ctx *circuit.StampContext) {
	br := v.branch
	if v.p != 0 {
		ctx.A.Add(v.p-1, br, 1)
		ctx.A.Add(br, v.p-1, 1)
	}
	if v.n != 0 {
		ctx.A.Add(v.n-1, br, -1)
		ctx.A.Add(br, v.n-1, -1)
	}
	ctx.B[br] += v.wave.At(ctx.Time)
}

// StampStaticA implements circuit.SplitStamper: the ±1 incidence
// entries, which depend only on topology.
func (v *VSource) StampStaticA(ctx *circuit.StampContext) {
	br := v.branch
	if v.p != 0 {
		ctx.A.Add(v.p-1, br, 1)
		ctx.A.Add(br, v.p-1, 1)
	}
	if v.n != 0 {
		ctx.A.Add(v.n-1, br, -1)
		ctx.A.Add(br, v.n-1, -1)
	}
}

// StampStepB implements circuit.SplitStamper: the branch equation's
// right-hand side is the waveform value at the step time.
func (v *VSource) StampStepB(ctx *circuit.StampContext) {
	ctx.B[v.branch] += v.wave.At(ctx.Time)
}

// PinnedNode implements circuit.GroundedSource: a source wired between
// one node and ground forces that node's voltage outright, so the engine
// may eliminate both the node and the branch unknown.
func (v *VSource) PinnedNode() (node, branch int, ok bool) {
	switch {
	case v.p != 0 && v.n == 0:
		return v.p, v.branch, true
	case v.p == 0 && v.n != 0:
		return v.n, v.branch, true
	}
	return 0, 0, false
}

// PinnedValue implements circuit.GroundedSource.
func (v *VSource) PinnedValue(t float64) float64 {
	if v.n == 0 {
		return v.wave.At(t)
	}
	return -v.wave.At(t)
}

// BranchIndex returns the X-vector index holding this source's current.
func (v *VSource) BranchIndex() int { return v.branch }
