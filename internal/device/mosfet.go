package device

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/circuit"
)

// MOSParams holds the level-1 (Shichman–Hodges) model parameters.
type MOSParams struct {
	// Vt0 is the zero-bias threshold voltage (positive for NMOS,
	// negative for PMOS).
	Vt0 float64
	// Kp is the transconductance parameter µ·Cox in A/V².
	Kp float64
	// Lambda is the channel-length modulation in 1/V.
	Lambda float64
	// W and L are the channel width and length in meters.
	W, L float64
}

// Beta returns Kp·W/L.
func (p MOSParams) Beta() float64 { return p.Kp * p.W / p.L }

// DefaultNMOS returns representative 0.35 µm-class NMOS parameters.
func DefaultNMOS() MOSParams {
	return MOSParams{Vt0: 0.55, Kp: 170e-6, Lambda: 0.05, W: 1e-6, L: 0.35e-6}
}

// DefaultPMOS returns representative 0.35 µm-class PMOS parameters.
func DefaultPMOS() MOSParams {
	return MOSParams{Vt0: -0.65, Kp: 58e-6, Lambda: 0.05, W: 2e-6, L: 0.35e-6}
}

// MOSFET is a three-terminal (bulk tied to rail) level-1 MOSFET.
// The nonlinear drain current is linearized around the current Newton
// iterate using gm and gds, stamped as conductance + VCCS + companion
// current — the standard SPICE treatment.
type MOSFET struct {
	name    string
	d, g, s int
	pmos    bool
	p       MOSParams
}

// NewNMOS creates an n-channel MOSFET with drain d, gate g, source s.
func NewNMOS(name string, d, g, s int, p MOSParams) *MOSFET {
	if p.Vt0 < 0 {
		panic(fmt.Sprintf("device: NMOS %s requires Vt0 >= 0", name))
	}
	return &MOSFET{name: name, d: d, g: g, s: s, p: p}
}

// NewPMOS creates a p-channel MOSFET with drain d, gate g, source s.
func NewPMOS(name string, d, g, s int, p MOSParams) *MOSFET {
	if p.Vt0 > 0 {
		panic(fmt.Sprintf("device: PMOS %s requires Vt0 <= 0", name))
	}
	return &MOSFET{name: name, d: d, g: g, s: s, pmos: true, p: p}
}

// Name implements circuit.Element.
func (m *MOSFET) Name() string { return m.name }

// Params returns the model parameters.
func (m *MOSFET) Params() MOSParams { return m.p }

// level1 evaluates the Shichman–Hodges drain current and its partials for
// an NMOS-polarity device with vds >= 0.
func level1(beta, vt, lambda, vgs, vds float64) (id, gm, gds float64) {
	vov := vgs - vt
	if vov <= 0 {
		return 0, 0, 0 // cutoff
	}
	clm := 1 + lambda*vds
	if vds < vov {
		// Triode region.
		id = beta * (vov*vds - vds*vds/2) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-vds*vds/2)*lambda
		return id, gm, gds
	}
	// Saturation.
	id = beta / 2 * vov * vov * clm
	gm = beta * vov * clm
	gds = beta / 2 * vov * vov * lambda
	return id, gm, gds
}

// operatingPoint computes the device current in NMOS-normalized (primed)
// coordinates. It returns the primed drain current and derivatives, the
// real-space effective drain/source nodes (after symmetry swap), and the
// polarity sign (−1 for PMOS).
func (m *MOSFET) operatingPoint(v func(int) float64) (id, gm, gds float64, dEff, sEff int, sign float64) {
	sign = 1.0
	if m.pmos {
		sign = -1
	}
	vd := sign * v(m.d)
	vg := sign * v(m.g)
	vs := sign * v(m.s)
	vt := m.p.Vt0
	if m.pmos {
		vt = -m.p.Vt0 // magnitude in primed (NMOS) polarity
	}
	dEff, sEff = m.d, m.s
	if vd < vs {
		// Symmetric device: swap so primed vds >= 0.
		vd, vs = vs, vd
		dEff, sEff = m.s, m.d
	}
	id, gm, gds = level1(m.p.Beta(), vt, m.p.Lambda, vg-vs, vd-vs)
	return id, gm, gds, dEff, sEff, sign
}

// Stamp implements circuit.Element.
//
// Derivation: with primed voltages v' = sign·v, the real-space channel
// current from the effective drain to the effective source is
// i = sign·f(v'gs, v'ds). Expanding around the iterate,
// Δi = gm·(Δvg − Δvs) + gds·(Δvd − Δvs) in REAL voltages (the two sign
// factors cancel), so the conductance and VCCS are stamped unsigned and
// only the companion constant carries the polarity.
func (m *MOSFET) Stamp(ctx *circuit.StampContext) {
	id, gm, gds, d, s, sign := m.operatingPoint(ctx.V)
	// Primed-space controlling voltages at the iterate.
	vgsP := sign*ctx.V(m.g) - sign*ctx.V(s)
	vdsP := sign*ctx.V(d) - sign*ctx.V(s)

	ctx.StampConductance(d, s, gds)
	ctx.StampTransconductance(d, s, m.g, s, gm)
	ieq := sign * (id - gm*vgsP - gds*vdsP)
	ctx.StampCurrent(d, s, ieq)
}

// DrainCurrent returns the real-space current flowing from the effective
// drain to the effective source for a solved voltage accessor.
func (m *MOSFET) DrainCurrent(v func(int) float64) float64 {
	id, _, _, _, _, sign := m.operatingPoint(v)
	return sign * id
}
