// Package device implements the circuit-element models used to build the
// DRAM column netlists: passives (R, C), independent sources, a
// voltage-controlled switch, and a level-1 (Shichman–Hodges) MOSFET.
//
// All models stamp companion/linearized equivalents into the MNA system
// provided by internal/circuit; time integration uses the backward-Euler
// companion form, which is unconditionally stable — the right choice for
// the stiff RC networks that resistive-open defects create.
package device

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/circuit"
)

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	name string
	a, b int
	ohms float64
}

// NewResistor creates a resistor of the given resistance (Ω) between
// nodes a and b. Resistance must be positive.
func NewResistor(name string, a, b int, ohms float64) *Resistor {
	if ohms <= 0 {
		panic(fmt.Sprintf("device: resistor %s with non-positive resistance %g", name, ohms))
	}
	return &Resistor{name: name, a: a, b: b, ohms: ohms}
}

// Name implements circuit.Element.
func (r *Resistor) Name() string { return r.name }

// Resistance returns the resistance in ohms.
func (r *Resistor) Resistance() float64 { return r.ohms }

// SetResistance changes the resistance; used by defect injection to sweep
// R_def without rebuilding the netlist.
func (r *Resistor) SetResistance(ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("device: resistor %s set to non-positive resistance %g", r.name, ohms))
	}
	r.ohms = ohms
}

// Stamp implements circuit.Element.
func (r *Resistor) Stamp(ctx *circuit.StampContext) {
	ctx.StampConductance(r.a, r.b, 1/r.ohms)
}

// StampStaticA implements circuit.SplitStamper: the conductance is the
// whole contribution. Engines that cache static stamps must be
// invalidated after SetResistance (dram.Column does this for its defect
// sites).
func (r *Resistor) StampStaticA(ctx *circuit.StampContext) {
	ctx.StampConductance(r.a, r.b, 1/r.ohms)
}

// StampStepB implements circuit.SplitStamper: a resistor has no
// right-hand-side contribution.
func (r *Resistor) StampStepB(*circuit.StampContext) {}

// Current returns the current flowing from node a to node b given a
// solved voltage vector x (node voltages only, ground excluded).
func (r *Resistor) Current(v func(int) float64) float64 {
	return (v(r.a) - v(r.b)) / r.ohms
}

// Capacitor is a linear two-terminal capacitor. Under backward-Euler it
// is stateless; under trapezoidal integration it tracks its branch
// current between steps (falling back to backward Euler on the first
// step after a state reset, the standard damped start). During DC
// analysis it is treated as open (no stamp), so every capacitor node
// needs a DC path to ground — the simulator's gmin provides one for
// genuinely floating nodes such as isolated bit lines.
type Capacitor struct {
	name   string
	a, b   int
	farads float64

	iPrev    float64
	hasIPrev bool
}

// NewCapacitor creates a capacitor of the given capacitance (F) between
// nodes a and b. Capacitance must be positive.
func NewCapacitor(name string, a, b int, farads float64) *Capacitor {
	if farads <= 0 {
		panic(fmt.Sprintf("device: capacitor %s with non-positive capacitance %g", name, farads))
	}
	return &Capacitor{name: name, a: a, b: b, farads: farads}
}

// Name implements circuit.Element.
func (c *Capacitor) Name() string { return c.name }

// Capacitance returns the capacitance in farads.
func (c *Capacitor) Capacitance() float64 { return c.farads }

// Stamp implements circuit.Element using the backward-Euler companion
// model (geq = C/dt in parallel with a current source geq·v(t−dt)) or,
// when the context selects it and branch-current state exists, the
// trapezoidal companion geq = 2C/dt with ieq = geq·v(t−dt) + i(t−dt).
func (c *Capacitor) Stamp(ctx *circuit.StampContext) {
	if ctx.Dt <= 0 {
		return // open at DC
	}
	vPrev := ctx.VPrev(c.a) - ctx.VPrev(c.b)
	if ctx.Trapezoidal && c.hasIPrev {
		geq := 2 * c.farads / ctx.Dt
		ctx.StampConductance(c.a, c.b, geq)
		ctx.StampCurrent(c.b, c.a, geq*vPrev+c.iPrev)
		return
	}
	geq := c.farads / ctx.Dt
	ctx.StampConductance(c.a, c.b, geq)
	// The companion current source injects geq·vPrev from b to a so that
	// zero applied current keeps the capacitor voltage constant.
	ctx.StampCurrent(c.b, c.a, geq*vPrev)
}

// StampStaticA implements circuit.SplitStamper: the companion
// conductance. Under trapezoidal integration it depends on whether
// branch-current state exists, which only changes between timesteps.
func (c *Capacitor) StampStaticA(ctx *circuit.StampContext) {
	if ctx.Dt <= 0 {
		return // open at DC
	}
	if ctx.Trapezoidal && c.hasIPrev {
		ctx.StampConductance(c.a, c.b, 2*c.farads/ctx.Dt)
		return
	}
	ctx.StampConductance(c.a, c.b, c.farads/ctx.Dt)
}

// StampStepB implements circuit.SplitStamper: the companion current
// source, fixed within a timestep (it depends only on the previous
// step's solution).
func (c *Capacitor) StampStepB(ctx *circuit.StampContext) {
	if ctx.Dt <= 0 {
		return
	}
	vPrev := ctx.VPrev(c.a) - ctx.VPrev(c.b)
	if ctx.Trapezoidal && c.hasIPrev {
		geq := 2 * c.farads / ctx.Dt
		ctx.StampCurrent(c.b, c.a, geq*vPrev+c.iPrev)
		return
	}
	ctx.StampCurrent(c.b, c.a, c.farads/ctx.Dt*vPrev)
}

// Commit implements circuit.Committer: records the branch current of the
// accepted step for the next trapezoidal companion.
func (c *Capacitor) Commit(ctx *circuit.StampContext) {
	if ctx.Dt <= 0 {
		c.hasIPrev = false
		return
	}
	vN := ctx.V(c.a) - ctx.V(c.b)
	vPrev := ctx.VPrev(c.a) - ctx.VPrev(c.b)
	if ctx.Trapezoidal && c.hasIPrev {
		c.iPrev = 2*c.farads/ctx.Dt*(vN-vPrev) - c.iPrev
	} else {
		c.iPrev = c.farads / ctx.Dt * (vN - vPrev)
	}
	c.hasIPrev = true
}

// ResetState clears integration state (used after a forced node-voltage
// change, which invalidates the stored branch current).
func (c *Capacitor) ResetState() { c.hasIPrev = false; c.iPrev = 0 }
