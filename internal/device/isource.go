package device

import "github.com/memtest/partialfaults/internal/circuit"

// ISource is an independent current source driving a Waveform current
// from node p out through node n (conventional current flows p → n
// through the external circuit, i.e. the source pushes current into n).
type ISource struct {
	name string
	p, n int
	wave Waveform
}

// NewISource creates a current source of wave.At(t) amps flowing from
// node p to node n through the source (out of n into the circuit).
func NewISource(name string, p, n int, wave Waveform) *ISource {
	if wave == nil {
		panic("device: ISource requires a waveform")
	}
	return &ISource{name: name, p: p, n: n, wave: wave}
}

// Name implements circuit.Element.
func (s *ISource) Name() string { return s.name }

// SetWaveform replaces the driving waveform.
func (s *ISource) SetWaveform(w Waveform) {
	if w == nil {
		panic("device: ISource requires a waveform")
	}
	s.wave = w
}

// StampStaticA implements circuit.SplitStamper: a current source has no
// matrix contribution.
func (s *ISource) StampStaticA(*circuit.StampContext) {}

// StampStepB implements circuit.SplitStamper: the waveform current at
// the step time.
func (s *ISource) StampStepB(ctx *circuit.StampContext) {
	ctx.StampCurrent(s.p, s.n, s.wave.At(ctx.Time))
}

// Stamp implements circuit.Element: a pure RHS contribution.
func (s *ISource) Stamp(ctx *circuit.StampContext) {
	ctx.StampCurrent(s.p, s.n, s.wave.At(ctx.Time))
}
