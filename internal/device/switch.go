package device

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/circuit"
)

// Switch is a voltage-controlled resistive switch: Ron between a and b
// when v(ctrl) − v(ctrlRef) exceeds the threshold, Roff otherwise. A
// narrow linear transition band keeps the Newton iteration differentiable
// enough to converge. Switches model ideal pass/precharge control where
// full MOS detail is unnecessary.
type Switch struct {
	name          string
	a, b          int
	ctrl, ctrlRef int
	threshold     float64
	ron, roff     float64
	band          float64
}

// NewSwitch creates a switch controlled by v(ctrl) − v(ctrlRef) compared
// against threshold. Ron and Roff must be positive with Ron < Roff.
func NewSwitch(name string, a, b, ctrl, ctrlRef int, threshold, ron, roff float64) *Switch {
	if ron <= 0 || roff <= 0 || ron >= roff {
		panic(fmt.Sprintf("device: switch %s requires 0 < Ron < Roff, got %g, %g", name, ron, roff))
	}
	return &Switch{
		name: name, a: a, b: b, ctrl: ctrl, ctrlRef: ctrlRef,
		threshold: threshold, ron: ron, roff: roff, band: 0.1,
	}
}

// Name implements circuit.Element.
func (s *Switch) Name() string { return s.name }

// conductance returns the interpolated switch conductance for a control
// voltage.
func (s *Switch) conductance(vc float64) float64 {
	gon, goff := 1/s.ron, 1/s.roff
	lo, hi := s.threshold-s.band/2, s.threshold+s.band/2
	switch {
	case vc <= lo:
		return goff
	case vc >= hi:
		return gon
	default:
		t := (vc - lo) / s.band
		return goff + t*(gon-goff)
	}
}

// Stamp implements circuit.Element. The control voltage is taken from the
// current iterate, making the element weakly nonlinear; the conductance
// interpolation band keeps successive iterates consistent.
func (s *Switch) Stamp(ctx *circuit.StampContext) {
	vc := ctx.V(s.ctrl) - ctx.V(s.ctrlRef)
	ctx.StampConductance(s.a, s.b, s.conductance(vc))
}
