package stress

import (
	"math"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/dram"
)

// TestNominalIdentity pins the identity the whole stress axis hangs on:
// deriving the nominal corner returns the base technology and the base
// analytical parameters bit-for-bit, so the nominal corner shares the
// base model's fingerprint — and therefore its memo and store entries.
func TestNominalIdentity(t *testing.T) {
	base := dram.Default()
	got, err := Nominal().Derive(base)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("nominal derivation is not the identity:\n%+v\n%+v", got, base)
	}
	bp := behav.DefaultParams()
	gp, err := Nominal().DeriveParams(bp)
	if err != nil {
		t.Fatal(err)
	}
	if gp != bp {
		t.Fatalf("nominal parameter derivation is not the identity:\n%+v\n%+v", gp, bp)
	}
	if behav.Fingerprint(gp) != behav.Fingerprint(bp) {
		t.Fatal("nominal corner does not share the base model fingerprint")
	}
}

// TestDefaultCornersDeriveClean proves the package's documented claim:
// every built-in corner derives lint-clean from dram.Default(), for
// both the electrical technology and the analytical parameter set.
func TestDefaultCornersDeriveClean(t *testing.T) {
	for _, c := range DefaultCorners() {
		if _, err := c.Derive(dram.Default()); err != nil {
			t.Errorf("corner %s: %v", c.Name, err)
		}
		if _, err := c.DeriveParams(behav.DefaultParams()); err != nil {
			t.Errorf("corner %s (params): %v", c.Name, err)
		}
	}
}

// TestCornerFingerprintsDistinct is the anti-aliasing property the
// shared memo and store depend on: distinct corners derive distinct
// model fingerprints under both engines.
func TestCornerFingerprintsDistinct(t *testing.T) {
	seenBehav := map[analysis.Fingerprint]string{}
	seenSpice := map[analysis.Fingerprint]string{}
	for _, c := range DefaultCorners() {
		p, err := c.DeriveParams(behav.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		bf := behav.Fingerprint(p)
		if prev, dup := seenBehav[bf]; dup {
			t.Errorf("corners %s and %s share behav fingerprint %s", prev, c.Name, bf)
		}
		seenBehav[bf] = c.Name

		tech, err := c.Derive(dram.Default())
		if err != nil {
			t.Fatal(err)
		}
		sf, err := analysis.SpiceFingerprint(tech)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seenSpice[sf]; dup {
			t.Errorf("corners %s and %s share spice fingerprint %s", prev, c.Name, sf)
		}
		seenSpice[sf] = c.Name
	}
}

// TestParseSpecRoundTrip: ParseSpec(s.String()) == s for every built-in
// corner, and bare built-in names resolve to their corner.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, c := range DefaultCorners() {
		got, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("%s: %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip moved %s to %+v", c.String(), got)
		}
		byName, err := ParseSpec(c.Name)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if byName != c {
			t.Errorf("built-in name %s resolved to %+v", c.Name, byName)
		}
	}
	// Omitted keys stay nominal.
	got, err := ParseSpec(" burn-in : temp=125 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Nominal()
	want.Name, want.TempC = "burn-in", 125
	if got != want {
		t.Errorf("partial spec parsed to %+v, want %+v", got, want)
	}
}

// TestParseSpecErrors drives the parser's rejection paths.
func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",                // empty
		"   ",             // blank
		":vdd=1",          // no name
		"volcanic",        // unknown built-in
		"x:vdd",           // no value
		"x:vdd=abc",       // unparsable value
		"x:warp=9",        // unknown key
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

// TestParseSpecs checks list parsing: unique names, empty-list
// rejection, blank-segment tolerance.
func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs(" hot ; cold ;;")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "hot" || specs[1].Name != "cold" {
		t.Fatalf("specs: %+v", specs)
	}
	if _, err := ParseSpecs("hot;hot"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names accepted: %v", err)
	}
	if _, err := ParseSpecs(" ; ;"); err == nil {
		t.Fatal("empty corner list accepted")
	}
}

// TestDeriveRejectsUnphysicalSpecs drives validate() through Derive:
// non-finite parameters, non-positive scales and out-of-range
// temperatures must all fail before any technology math runs.
func TestDeriveRejectsUnphysicalSpecs(t *testing.T) {
	base := dram.Default()
	mk := func(mutate func(*Spec)) Spec {
		s := Nominal()
		s.Name = "bad"
		mutate(&s)
		return s
	}
	cases := []Spec{
		mk(func(s *Spec) { s.VDDScale = math.NaN() }),
		mk(func(s *Spec) { s.VBLEQShift = math.Inf(1) }),
		mk(func(s *Spec) { s.VDDScale = 0 }),
		mk(func(s *Spec) { s.VPPScale = -1 }),
		mk(func(s *Spec) { s.TempC = dram.MaxTempC + 1 }),
		mk(func(s *Spec) { s.TempC = dram.MinTempC - 1 }),
		mk(func(s *Spec) { s.Name = "" }),
		// Passes validate() but derives a technology lint rejects: a
		// collapsed supply starves every level check.
		mk(func(s *Spec) { s.VDDScale = 0.05 }),
	}
	for _, s := range cases {
		if _, err := s.Derive(base); err == nil {
			t.Errorf("Derive accepted %+v", s)
		}
		if _, err := s.DeriveParams(behav.DefaultParams()); err == nil {
			t.Errorf("DeriveParams accepted %+v", s)
		}
	}
}

// TestEnsureNominal: prepended when absent, untouched when present —
// even when the identity corner travels under another name.
func TestEnsureNominal(t *testing.T) {
	hot, _ := ParseSpec("hot")
	got := EnsureNominal([]Spec{hot})
	if len(got) != 2 || got[0] != Nominal() || got[1] != hot {
		t.Fatalf("EnsureNominal([hot]) = %+v", got)
	}
	withNominal := []Spec{hot, Nominal()}
	if g := EnsureNominal(withNominal); len(g) != 2 || g[0] != hot {
		t.Fatalf("EnsureNominal reordered %+v to %+v", withNominal, g)
	}
	renamed := Nominal()
	renamed.Name = "baseline"
	if g := EnsureNominal([]Spec{renamed}); len(g) != 1 {
		t.Fatalf("renamed identity corner not recognized: %+v", g)
	}
}

// TestTempFactors pins the derivation physics' direction: heat raises
// wire resistance and weakens device drive; cold does the opposite; the
// base temperature is the fixed point.
func TestTempFactors(t *testing.T) {
	base := dram.Default().TempC
	r, d := tempFactors(base, base)
	if r != 1 || d != 1 {
		t.Fatalf("base temperature is not the fixed point: r=%g d=%g", r, d)
	}
	r, d = tempFactors(base, 100)
	if r <= 1 || d >= 1 {
		t.Fatalf("hot factors have the wrong sign: r=%g d=%g", r, d)
	}
	r, d = tempFactors(base, -40)
	if r >= 1 || d <= 1 {
		t.Fatalf("cold factors have the wrong sign: r=%g d=%g", r, d)
	}
}
