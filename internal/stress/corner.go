// Package stress implements the stress-condition scenario matrix: the
// third analysis axis of the roadmap, grounded in the industrial
// stress-testing evaluation of Majhi et al. Operating corners — supply
// and word-line boost scaling, precharge-level shifts and
// temperature-scaled device parameters — are expressed as validated
// derivations of dram.Technology, swept over the full defect catalog
// through the existing pooled/memoized pipeline, and reported as a
// per-corner Table-1-style inventory, a corner-delta report against the
// nominal corner, and a worst-corner coverage certificate that is only
// claimed when it holds at every corner (DESIGN.md §15).
package stress

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
)

// Physical constants of the corner derivation. The values are
// first-order textbook numbers, not calibration targets: what matters
// downstream is that temperature moves every resistance and drive
// strength monotonically and deterministically, so corners are
// reproducible and their fingerprints honest.
const (
	// wireTCR is the temperature coefficient of the wire and switch
	// resistances, per kelvin (aluminium-class interconnect).
	wireTCR = 3.5e-3
	// mobilityExp is the exponent of the carrier-mobility power law
	// µ(T) ∝ T^-mobilityExp; device drive scales with µ.
	mobilityExp = 1.5
	// zeroC converts Celsius to absolute temperature.
	zeroC = 273.15
)

// Spec declares one operating corner as a derivation from a base
// technology. The zero value is invalid (a zero VDD scale); build specs
// with Nominal(), ParseSpec, or by mutating Nominal().
type Spec struct {
	// Name labels the corner in reports and store keys.
	Name string
	// VDDScale multiplies VDD; VBLEQ and VRefCell scale with it too, so
	// the half-rail precharge convention tracks the supply.
	VDDScale float64
	// VPPScale multiplies the boosted word-line level VPP.
	VPPScale float64
	// VBLEQShift is added to the (scaled) bit-line precharge level, in
	// volts — the precharge-stress axis.
	VBLEQShift float64
	// VRefShift is added to the (scaled) reference-cell restore level.
	VRefShift float64
	// TempC is the absolute junction temperature of the corner in °C.
	TempC float64
}

// Nominal returns the identity corner: every scale 1, every shift 0,
// temperature at the default calibration point. Deriving it from a base
// technology returns that technology bit-for-bit, so the nominal corner
// shares the base model's fingerprint — and therefore its memo and
// store entries.
func Nominal() Spec {
	return Spec{Name: "nominal", VDDScale: 1, VPPScale: 1, TempC: dram.Default().TempC}
}

// IsNominal reports whether the spec is the identity derivation
// (regardless of its name).
func (s Spec) IsNominal() bool {
	n := Nominal()
	n.Name = s.Name
	return s == n
}

// String renders the spec in the canonical parseable form
// "name:vdd=…,vpp=…,bleq=…,vref=…,temp=…". ParseSpec(s.String())
// round-trips, and equal specs render equally — the property the store
// keys and fingerprint tests lean on.
func (s Spec) String() string {
	return fmt.Sprintf("%s:vdd=%g,vpp=%g,bleq=%g,vref=%g,temp=%g",
		s.Name, s.VDDScale, s.VPPScale, s.VBLEQShift, s.VRefShift, s.TempC)
}

// DefaultCorners returns the built-in stress matrix: the nominal point
// plus the supply, precharge and temperature corners of the industrial
// stress envelope. Every entry derives lint-clean from dram.Default()
// (a unit test proves it).
func DefaultCorners() []Spec {
	mk := func(name string, mutate func(*Spec)) Spec {
		s := Nominal()
		s.Name = name
		mutate(&s)
		return s
	}
	return []Spec{
		Nominal(),
		mk("low-vdd", func(s *Spec) { s.VDDScale, s.VPPScale = 0.9, 0.9 }),
		mk("high-vdd", func(s *Spec) { s.VDDScale, s.VPPScale = 1.1, 1.1 }),
		mk("weak-precharge", func(s *Spec) { s.VBLEQShift, s.VRefShift = -0.3, -0.3 }),
		mk("hot", func(s *Spec) { s.TempC = 100 }),
		mk("cold", func(s *Spec) { s.TempC = -40 }),
	}
}

// ParseSpec parses one corner. Accepted forms:
//
//	nominal                          — the identity corner
//	hot                              — any DefaultCorners() name
//	name:key=val,key=val,...         — explicit derivation
//
// Keys: vdd and vpp (scale factors), bleq and vref (voltage shifts,
// volts), temp (absolute °C). Omitted keys stay nominal.
func ParseSpec(in string) (Spec, error) {
	in = strings.TrimSpace(in)
	if in == "" {
		return Spec{}, fmt.Errorf("stress: empty corner spec")
	}
	name, params, explicit := strings.Cut(in, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("stress: corner spec %q has no name", in)
	}
	if !explicit {
		for _, c := range DefaultCorners() {
			if c.Name == name {
				return c, nil
			}
		}
		return Spec{}, fmt.Errorf("stress: unknown corner %q (built-ins: %s; or use name:key=val,... )",
			name, strings.Join(cornerNames(DefaultCorners()), ", "))
	}
	s := Nominal()
	s.Name = name
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("stress: corner %q: bad parameter %q (want key=value)", name, kv)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("stress: corner %q: bad value in %q: %v", name, kv, err)
		}
		switch strings.TrimSpace(key) {
		case "vdd":
			s.VDDScale = v
		case "vpp":
			s.VPPScale = v
		case "bleq", "vbleq":
			s.VBLEQShift = v
		case "vref":
			s.VRefShift = v
		case "temp":
			s.TempC = v
		default:
			return Spec{}, fmt.Errorf("stress: corner %q: unknown parameter %q (want vdd, vpp, bleq, vref or temp)", name, key)
		}
	}
	return s, nil
}

// ParseSpecs parses a semicolon-separated corner list. Names must be
// unique — two corners sharing a name would be indistinguishable in
// every report and delta.
func ParseSpecs(in string) ([]Spec, error) {
	var out []Spec
	seen := map[string]bool{}
	for _, part := range strings.Split(in, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		s, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("stress: duplicate corner name %q", s.Name)
		}
		seen[s.Name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stress: empty corner list")
	}
	return out, nil
}

// validate rejects specs whose derivation arithmetic cannot be
// physical, before any technology math runs.
func (s Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("stress: corner has no name")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"vdd scale", s.VDDScale}, {"vpp scale", s.VPPScale},
		{"bleq shift", s.VBLEQShift}, {"vref shift", s.VRefShift},
		{"temp", s.TempC},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("stress: corner %q: %s = %g is not finite", s.Name, f.name, f.v)
		}
	}
	if s.VDDScale <= 0 || s.VPPScale <= 0 {
		return fmt.Errorf("stress: corner %q: scale factors must be positive (vdd=%g, vpp=%g)",
			s.Name, s.VDDScale, s.VPPScale)
	}
	if s.TempC < dram.MinTempC || s.TempC > dram.MaxTempC {
		return fmt.Errorf("stress: corner %q: temp = %g °C outside [%g, %g]",
			s.Name, s.TempC, dram.MinTempC, dram.MaxTempC)
	}
	return nil
}

// tempFactors returns the two temperature multipliers of a corner
// relative to the base temperature: the wire/switch resistance scale
// (linear TCR) and the device drive scale (mobility power law; hot
// devices are weaker, so the factor is < 1 above base temperature).
func tempFactors(baseC, cornerC float64) (rScale, driveScale float64) {
	rScale = 1 + wireTCR*(cornerC-baseC)
	driveScale = math.Pow((zeroC+baseC)/(zeroC+cornerC), mobilityExp)
	return rScale, driveScale
}

// Derive applies the corner to a base technology and validates the
// result: the derived Technology is returned only when dram's
// LintTechnology accepts it with zero errors, so every corner entering
// the matrix is lint-clean by construction. The nominal spec returns
// the base bit-for-bit.
func (s Spec) Derive(base dram.Technology) (dram.Technology, error) {
	if err := s.validate(); err != nil {
		return dram.Technology{}, err
	}
	t := base
	t.VDD = base.VDD * s.VDDScale
	t.VPP = base.VPP * s.VPPScale
	t.VBLEQ = base.VBLEQ*s.VDDScale + s.VBLEQShift
	t.VRefCell = base.VRefCell*s.VDDScale + s.VRefShift
	rScale, driveScale := tempFactors(base.TempC, s.TempC)
	t.RWire = base.RWire * rScale
	t.RWriteDriver = base.RWriteDriver * rScale
	t.ROutSwitch = base.ROutSwitch * rScale
	// The column applies WWLBoost as a width multiplier on every NMOS it
	// instantiates, so folding the mobility degradation into it weakens
	// (or at cold, strengthens) all access, precharge and select devices
	// coherently.
	t.WWLBoost = base.WWLBoost * driveScale
	t.TempC = s.TempC
	if findings := dram.LintTechnology(t); findings.Count(lint.Error) > 0 {
		return dram.Technology{}, fmt.Errorf("stress: corner %q derives an invalid technology:\n%s",
			s.Name, findings.Summary())
	}
	return t, nil
}

// DeriveParams applies the corner to the analytical model's parameters:
// the embedded technology is derived as in Derive, and the model's
// lumped on-resistances follow the same temperature physics — switch
// channels track the mobility law, the distributed wire floor tracks
// the TCR. The nominal spec returns the base bit-for-bit, preserving
// the nominal fingerprint.
func (s Spec) DeriveParams(base behav.Params) (behav.Params, error) {
	tech, err := s.Derive(base.Tech)
	if err != nil {
		return behav.Params{}, err
	}
	p := base
	p.Tech = tech
	rScale, driveScale := tempFactors(base.Tech.TempC, s.TempC)
	p.RAccess = base.RAccess / driveScale
	p.RPre = base.RPre / driveScale
	p.RCSL = base.RCSL / driveScale
	p.RSA = base.RSA / driveScale
	p.RWire = base.RWire * rScale
	return p, nil
}

// cornerNames projects the Name column.
func cornerNames(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// EnsureNominal returns the corner list with a nominal corner
// guaranteed present: if none of the given specs is the identity
// derivation, Nominal() is prepended. The relative order of the given
// corners is preserved — matrix row order is submission order.
func EnsureNominal(specs []Spec) []Spec {
	for _, s := range specs {
		if s.IsNominal() {
			return specs
		}
	}
	return append([]Spec{Nominal()}, specs...)
}
