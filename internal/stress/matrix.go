package stress

import (
	"context"
	"fmt"
	"sync"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
	"github.com/memtest/partialfaults/internal/numeric"
)

// Config parameterizes the stress matrix.
type Config struct {
	// Corners to sweep; nil means DefaultCorners(). A nominal corner is
	// ensured (prepended when absent) — the deltas and the certificate
	// need the reference point. Corner order is otherwise preserved.
	Corners []Spec
	// Engine selects the inventory backend: "behav" (default) or
	// "spice".
	Engine string
	// Params is the base analytical parameter set for the behav engine;
	// the zero value means behav.DefaultParams().
	Params behav.Params
	// Tech is the base electrical technology for the spice engine; the
	// zero value means dram.Default().
	Tech dram.Technology
	// MarchEngine evaluates per-corner coverage; nil means the scalar
	// oracle.
	MarchEngine march.Engine
	// Opens restricts the analyzed opens; nil means all simulated opens.
	Opens []defect.Open
	// RDefs and Us are the per-corner sweep grid — shared across
	// corners so region deltas compare like with like; nil means the
	// standard Table 1 grid.
	RDefs, Us []float64
	// Tests are the march tests certified; nil means the whole library.
	Tests []march.Test
	// Rows and Cols set the coverage-simulation geometry (default 4×2).
	Rows, Cols int
	// MaxCompletingOps bounds each corner's completion search.
	MaxCompletingOps int
	// Parallelism bounds concurrent simulations when Pool is nil.
	Parallelism int
	// Pool, Memo and Ctx thread through to every corner's pipeline.
	// Distinct corners derive distinct model fingerprints, so one memo
	// (and one persistent store behind it) is safe to share across the
	// whole matrix — corners can never serve each other's outcomes.
	Pool *analysis.Pool
	Memo *analysis.Memo
	Ctx  context.Context
	// Sweep, TraceStride and Trace select and instrument the plane-sweep
	// strategy, exactly as in analysis.InventoryConfig.
	Sweep       analysis.SweepMode
	TraceStride int
	Trace       *analysis.TraceCounters
	// Progress, when non-nil, receives one line per corner milestone.
	Progress func(string)
}

// DefaultRDefs and DefaultUs return the standard Table 1 grid axes.
func DefaultRDefs() []float64 { return numeric.Logspace(1e3, 1e7, 13) }
func DefaultUs() []float64    { return numeric.Linspace(0, 3.3, 12) }

// CornerRun is one corner's slice of the matrix.
type CornerRun struct {
	// Spec is the corner as submitted (after nominal normalization).
	Spec Spec
	// Tech is the derived technology the corner simulated under.
	Tech dram.Technology
	// Model is the corner's model fingerprint — distinct per distinct
	// corner, equal to the base model's for the nominal corner.
	Model analysis.Fingerprint
	// Rows is the corner's Table-1-style inventory.
	Rows []analysis.Row
	// Catalog is the fault catalog derived from Rows, one entry per row.
	Catalog []march.CatalogEntry
	// Uninjectable maps catalog-entry names the functional engine cannot
	// inject (e.g. a corner-found completion mixing victim and bit-line
	// operations) to the engine's reason. Such entries are skipped by the
	// coverage simulation and their certificate claims withheld.
	Uninjectable map[string]string
	// Coverage is the per-corner march coverage matrix over the
	// injectable part of Catalog.
	Coverage []march.CoverageResult
}

// Result is the full stress matrix: per-corner runs in submission
// order, deltas against the nominal corner, and the worst-corner
// coverage certificate.
type Result struct {
	// Engine and MarchEngineName record the backends.
	Engine, MarchEngineName string
	// Rows and Cols are the coverage geometry.
	Rows, Cols int
	// Corners holds one run per corner, in submission order.
	Corners []CornerRun
	// NominalIndex locates the nominal corner within Corners.
	NominalIndex int
	// Deltas reports, per non-nominal corner (in corner order), how the
	// inventory moved against nominal.
	Deltas []CornerDelta
	// Certificate is the worst-corner coverage certificate.
	Certificate Certificate
}

// Nominal returns the nominal corner's run.
func (r *Result) Nominal() CornerRun { return r.Corners[r.NominalIndex] }

// FamilyKey identifies a fault family across corners: the simulated
// FFM, the open and the mediating floating line. Completions may differ
// per corner; the family is the stable cross-corner identity.
type FamilyKey struct {
	FFM    fp.FFM
	OpenID int
	Float  defect.FloatVar
}

// String renders the family for reports and coverage-row names.
func (k FamilyKey) String() string {
	return fmt.Sprintf("%s via %s (Open %d)", k.FFM, k.Float, k.OpenID)
}

// familyOf projects an inventory row onto its family key.
func familyOf(r analysis.Row) FamilyKey {
	return FamilyKey{FFM: r.SimFFM, OpenID: r.Open.ID, Float: r.Float}
}

// less orders families deterministically: FFM, open, float.
func (k FamilyKey) less(o FamilyKey) bool {
	if k.FFM != o.FFM {
		return k.FFM < o.FFM
	}
	if k.OpenID != o.OpenID {
		return k.OpenID < o.OpenID
	}
	return k.Float < o.Float
}

// CatalogFromRows converts a corner's inventory into an injectable
// march catalog, one entry per row in row order: possible rows carry
// their corner-specific completed FP, "Not possible" rows become
// uncompletable entries (undetectable under guarantee semantics —
// exactly the paper's point about them). Entry names are the family
// keys, so coverage rows join back to families across corners.
func CatalogFromRows(rows []analysis.Row) []march.CatalogEntry {
	out := make([]march.CatalogEntry, 0, len(rows))
	for _, r := range rows {
		e := march.CatalogEntry{
			Name:  familyOf(r).String(),
			Float: r.Float, Partial: true,
		}
		if r.Possible {
			e.FP = r.Completed
		} else {
			e.FP = r.Partial.Example
			e.Uncompletable = true
		}
		out = append(out, e)
	}
	return out
}

// Injectable reports whether the functional engine can inject the
// entry, probing the scalar engine's fault compiler directly. A
// corner's completion search can legitimately find completing prefixes
// the engine cannot express — most commonly a prefix mixing victim and
// bit-line writes — and such entries must be withheld from the
// certificate rather than silently mis-simulated.
func Injectable(e march.CatalogEntry) (bool, string) {
	if _, err := memsim.CompileFault(e.Make(0)); err != nil {
		return false, err.Error()
	}
	return true, ""
}

// Analyze runs the full stress matrix: every corner's technology is
// derived and lint-validated, its inventory swept through the shared
// pooled/memoized pipeline under its own model fingerprint, its
// coverage matrix simulated over the derived catalog, and the deltas
// and worst-corner certificate assembled. Corners run concurrently;
// the result is deterministic in submission order.
func Analyze(cfg Config) (*Result, error) {
	corners := cfg.Corners
	if corners == nil {
		corners = DefaultCorners()
	}
	corners = EnsureNominal(corners)
	engine := cfg.Engine
	if engine == "" {
		engine = "behav"
	}
	if engine != "behav" && engine != "spice" {
		return nil, fmt.Errorf("stress: unknown engine %q (want behav or spice)", engine)
	}
	marchEng := cfg.MarchEngine
	if marchEng == nil {
		marchEng = march.ScalarEngine{}
	}
	params := cfg.Params
	if params == (behav.Params{}) {
		params = behav.DefaultParams()
	}
	baseTech := cfg.Tech
	if baseTech == (dram.Technology{}) {
		baseTech = dram.Default()
	}
	tests := cfg.Tests
	if tests == nil {
		tests = march.All()
	}
	rows, cols := cfg.Rows, cfg.Cols
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 2
	}
	rdefs := cfg.RDefs
	if rdefs == nil {
		rdefs = DefaultRDefs()
	}
	us := cfg.Us
	if us == nil {
		us = DefaultUs()
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	var progressMu sync.Mutex
	report := func(format string, args ...any) {
		progressMu.Lock()
		defer progressMu.Unlock()
		progress(fmt.Sprintf(format, args...))
	}

	pool := cfg.Pool
	if pool == nil {
		pool = analysis.NewPool(cfg.Parallelism)
	}
	memo := cfg.Memo
	if memo == nil {
		memo = analysis.NewMemo()
	}

	// Derive every corner up front: a bad corner fails the whole matrix
	// before any simulation runs.
	type derived struct {
		factory analysis.Factory
		model   analysis.Fingerprint
		tech    dram.Technology
	}
	ds := make([]derived, len(corners))
	seenModels := map[analysis.Fingerprint]string{}
	for i, spec := range corners {
		var d derived
		switch engine {
		case "behav":
			p, err := spec.DeriveParams(params)
			if err != nil {
				return nil, err
			}
			d = derived{factory: behav.NewFactory(p), model: behav.Fingerprint(p), tech: p.Tech}
		case "spice":
			t, err := spec.Derive(baseTech)
			if err != nil {
				return nil, err
			}
			fpnt, err := analysis.SpiceFingerprint(t)
			if err != nil {
				return nil, err
			}
			d = derived{factory: analysis.NewPooledSpiceFactory(t), model: fpnt, tech: t}
		}
		if prev, dup := seenModels[d.model]; dup {
			return nil, fmt.Errorf("stress: corners %q and %q derive the same model fingerprint %s — they would alias in the memo; drop one",
				prev, spec.Name, d.model)
		}
		seenModels[d.model] = spec.Name
		ds[i] = d
	}

	runs := make([]CornerRun, len(corners))
	errs := make([]error, len(corners))
	var wg sync.WaitGroup
	for i := range corners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec, d := corners[i], ds[i]
			report("corner %s: sweeping inventory under model %s", spec.Name, d.model)
			invRows, err := analysis.BuildInventory(analysis.InventoryConfig{
				Factory: d.factory,
				Opens:   cfg.Opens,
				RDefs:   rdefs, Us: us,
				MaxCompletingOps: cfg.MaxCompletingOps,
				Model:            d.model,
				Ctx:              cfg.Ctx,
				Memo:             memo, Pool: pool,
				Sweep: cfg.Sweep, TraceStride: cfg.TraceStride, Trace: cfg.Trace,
			})
			if err != nil {
				errs[i] = fmt.Errorf("stress: corner %s: %w", spec.Name, err)
				return
			}
			catalog := CatalogFromRows(invRows)
			injectable := make([]march.CatalogEntry, 0, len(catalog))
			uninjectable := map[string]string{}
			for _, e := range catalog {
				if ok, why := Injectable(e); !ok {
					uninjectable[e.Name] = why
					continue
				}
				injectable = append(injectable, e)
			}
			report("corner %s: %d inventory rows (%d injectable); simulating coverage on %dx%d",
				spec.Name, len(invRows), len(injectable), rows, cols)
			var coverage []march.CoverageResult
			var werr error
			if err := pool.DoContext(cfg.Ctx, func() {
				coverage, werr = march.CoverageMatrixWith(marchEng, tests, injectable, rows, cols)
			}); err != nil {
				errs[i] = fmt.Errorf("stress: corner %s coverage: %w", spec.Name, err)
				return
			}
			if werr != nil {
				errs[i] = fmt.Errorf("stress: corner %s coverage: %w", spec.Name, werr)
				return
			}
			runs[i] = CornerRun{
				Spec: spec, Tech: d.tech, Model: d.model,
				Rows: invRows, Catalog: catalog,
				Uninjectable: uninjectable, Coverage: coverage,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	nominalIdx := 0
	for i, s := range corners {
		if s.IsNominal() {
			nominalIdx = i
			break
		}
	}
	res := &Result{
		Engine: engine, MarchEngineName: marchEng.Name(),
		Rows: rows, Cols: cols,
		Corners: runs, NominalIndex: nominalIdx,
	}
	res.Deltas = buildDeltas(res)
	res.Certificate = buildCertificate(res, tests)
	return res, nil
}
