package stress

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/analysis"
)

// RegionStat summarizes where a family's fault region sits in a
// corner's plane: how many R_def rows show the FFM at all, how many of
// those are partial, and the floating-voltage span of the partial
// observations. Because every corner sweeps the same grid, the stats
// compare cell-for-cell across corners.
type RegionStat struct {
	NRDef    int     `json:"n_rdef"`
	NPartial int     `json:"n_partial"`
	ULow     float64 `json:"u_low"`
	UHigh    float64 `json:"u_high"`
}

// regionOf projects an inventory row's partial finding.
func regionOf(r analysis.Row) RegionStat {
	return RegionStat{
		NRDef:    len(r.Partial.RDefWithFFM),
		NPartial: len(r.Partial.RDefWithPartial),
		ULow:     r.Partial.ULow,
		UHigh:    r.Partial.UHigh,
	}
}

// String renders the stat compactly.
func (s RegionStat) String() string {
	return fmt.Sprintf("%d R_def rows (%d partial), U ∈ [%.2f, %.2f] V", s.NRDef, s.NPartial, s.ULow, s.UHigh)
}

// RowChange describes one family whose row differs between the nominal
// and a stress corner.
type RowChange struct {
	Family string `json:"family"`
	// Grew is +1 when the corner's region spans more grid rows than
	// nominal, -1 when fewer, 0 when equal.
	Grew int `json:"grew"`
	// From and To render the nominal and corner rows.
	From string `json:"from"`
	To   string `json:"to"`
}

// CornerDelta reports how one corner's inventory moved against the
// nominal corner: families that appeared, disappeared, or stayed but
// changed (completion flipped or the region moved).
type CornerDelta struct {
	Corner string `json:"corner"`
	// Appeared and Disappeared list family keys, sorted.
	Appeared    []string `json:"appeared,omitempty"`
	Disappeared []string `json:"disappeared,omitempty"`
	// Changed lists families present in both whose row differs.
	Changed []RowChange `json:"changed,omitempty"`
}

// Unchanged reports whether the corner's inventory is identical (at
// family/region granularity) to nominal's.
func (d CornerDelta) Unchanged() bool {
	return len(d.Appeared) == 0 && len(d.Disappeared) == 0 && len(d.Changed) == 0
}

// describeRow renders a row for the delta report.
func describeRow(r analysis.Row) string {
	if !r.Possible {
		return fmt.Sprintf("Not possible; %s", regionOf(r))
	}
	return fmt.Sprintf("completed %s; %s", r.Completed, regionOf(r))
}

// buildDeltas compares every non-nominal corner against nominal. One
// delta per non-nominal corner, in corner order; lists inside each
// delta are sorted by family key.
func buildDeltas(res *Result) []CornerDelta {
	nominal := res.Nominal()
	nomRows := map[FamilyKey]analysis.Row{}
	for _, r := range nominal.Rows {
		nomRows[familyOf(r)] = r
	}
	var out []CornerDelta
	for i, run := range res.Corners {
		if i == res.NominalIndex {
			continue
		}
		d := CornerDelta{Corner: run.Spec.Name}
		cornerRows := map[FamilyKey]analysis.Row{}
		var keys []FamilyKey
		for _, r := range run.Rows {
			k := familyOf(r)
			cornerRows[k] = r
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].less(keys[b]) })
		for _, k := range keys {
			cr := cornerRows[k]
			nr, inNominal := nomRows[k]
			if !inNominal {
				d.Appeared = append(d.Appeared, k.String())
				continue
			}
			if rowEqual(nr, cr) {
				continue
			}
			grew := 0
			if a, b := regionOf(cr).NRDef, regionOf(nr).NRDef; a > b {
				grew = 1
			} else if a < b {
				grew = -1
			}
			d.Changed = append(d.Changed, RowChange{
				Family: k.String(), Grew: grew,
				From: describeRow(nr), To: describeRow(cr),
			})
		}
		var nomKeys []FamilyKey
		for k := range nomRows {
			if _, ok := cornerRows[k]; !ok {
				nomKeys = append(nomKeys, k)
			}
		}
		sort.Slice(nomKeys, func(a, b int) bool { return nomKeys[a].less(nomKeys[b]) })
		for _, k := range nomKeys {
			d.Disappeared = append(d.Disappeared, k.String())
		}
		out = append(out, d)
	}
	return out
}

// rowEqual compares the delta-relevant projection of two rows:
// completion outcome and region placement.
func rowEqual(a, b analysis.Row) bool {
	return a.Possible == b.Possible &&
		a.CompletedString() == b.CompletedString() &&
		regionOf(a) == regionOf(b)
}
