package stress

import (
	"reflect"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
)

// opensByID resolves defect opens for the reduced test grids.
func opensByID(t testing.TB, ids ...int) []defect.Open {
	t.Helper()
	out := make([]defect.Open, 0, len(ids))
	for _, id := range ids {
		o, ok := defect.ByID(id)
		if !ok {
			t.Fatalf("no open %d", id)
		}
		out = append(out, o)
	}
	return out
}

// testsNamed resolves march tests for the reduced test configs.
func testsNamed(t testing.TB, names ...string) []march.Test {
	t.Helper()
	byName := map[string]march.Test{}
	for _, mt := range march.All() {
		byName[mt.Name] = mt
	}
	out := make([]march.Test, 0, len(names))
	for _, n := range names {
		mt, ok := byName[n]
		if !ok {
			t.Fatalf("no march test %q", n)
		}
		out = append(out, mt)
	}
	return out
}

// smallConfig is the reduced stress config the unit tests share: two
// opens, a 2×3 grid, one march test, a 2×2 coverage geometry.
func smallConfig(t testing.TB, corners []Spec) Config {
	t.Helper()
	return Config{
		Corners: corners,
		Opens:   opensByID(t, 1, 5),
		RDefs:   []float64{1e4, 1e6},
		Us:      []float64{0, 1.5, 3.3},
		Tests:   testsNamed(t, "March PF"),
		Rows:    2, Cols: 2,
	}
}

// runsByName indexes a result's corner runs.
func runsByName(res *Result) map[string]CornerRun {
	out := map[string]CornerRun{}
	for _, run := range res.Corners {
		out[run.Spec.Name] = run
	}
	return out
}

// TestCornerPermutationInvariance: the matrix is deterministic per
// corner under a wide goroutine pool — permuting the submitted corner
// list changes row order only, never any corner's content.
func TestCornerPermutationInvariance(t *testing.T) {
	hot, _ := ParseSpec("hot")
	lowVDD, _ := ParseSpec("low-vdd")
	order1 := []Spec{Nominal(), lowVDD, hot}
	order2 := []Spec{hot, Nominal(), lowVDD}

	run := func(corners []Spec) *Result {
		cfg := smallConfig(t, corners)
		cfg.Parallelism = 8
		res, err := Analyze(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(order1), run(order2)

	if a.Nominal().Spec.Name != "nominal" || b.Nominal().Spec.Name != "nominal" {
		t.Fatal("nominal index does not point at the nominal corner")
	}
	ra, rb := runsByName(a), runsByName(b)
	if len(ra) != 3 || len(rb) != 3 {
		t.Fatalf("corner counts: %d and %d", len(ra), len(rb))
	}
	for name, runA := range ra {
		if !reflect.DeepEqual(runA, rb[name]) {
			t.Errorf("corner %s differs between submission orders", name)
		}
	}
	if a.Certificate.Claimed() != b.Certificate.Claimed() {
		t.Errorf("claimed counts differ: %d vs %d",
			a.Certificate.Claimed(), b.Certificate.Claimed())
	}
}

// TestMemoNeverAliasesAcrossCorners is the anti-aliasing regression:
// all corners share one memo in a full Analyze, so each corner's run
// must be bit-identical to an isolated Analyze of that corner alone
// with a fresh memo. A memo entry served across corners would break
// this immediately.
func TestMemoNeverAliasesAcrossCorners(t *testing.T) {
	hot, _ := ParseSpec("hot")
	lowVDD, _ := ParseSpec("low-vdd")
	shared, err := Analyze(smallConfig(t, []Spec{Nominal(), lowVDD, hot}))
	if err != nil {
		t.Fatal(err)
	}
	sharedRuns := runsByName(shared)
	for _, spec := range []Spec{lowVDD, hot} {
		solo, err := Analyze(smallConfig(t, []Spec{spec}))
		if err != nil {
			t.Fatal(err)
		}
		soloRun := runsByName(solo)[spec.Name]
		got := sharedRuns[spec.Name]
		if !reflect.DeepEqual(got.Rows, soloRun.Rows) {
			t.Errorf("corner %s inventory differs under the shared memo", spec.Name)
		}
		if !reflect.DeepEqual(got.Coverage, soloRun.Coverage) {
			t.Errorf("corner %s coverage differs under the shared memo", spec.Name)
		}
	}
}

// TestDuplicateFingerprintRejected: two differently-named corners with
// identical derivations would alias in the memo; Analyze must refuse.
func TestDuplicateFingerprintRejected(t *testing.T) {
	a, _ := ParseSpec("a:vdd=0.95")
	b, _ := ParseSpec("b:vdd=0.95")
	_, err := Analyze(smallConfig(t, []Spec{a, b}))
	if err == nil || !strings.Contains(err.Error(), "alias") {
		t.Fatalf("duplicate derivation accepted: %v", err)
	}
}

// TestAnalyzeUnknownEngine: the engine name is validated up front.
func TestAnalyzeUnknownEngine(t *testing.T) {
	cfg := smallConfig(t, []Spec{Nominal()})
	cfg.Engine = "verilog"
	if _, err := Analyze(cfg); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestInjectable: uniform-target completions compile; a completion
// mixing victim and bit-line writes — a shape the corner-local
// completion search can legitimately find — is reported uninjectable
// with the engine's reason.
func TestInjectable(t *testing.T) {
	for _, e := range march.PaperFaultCatalog() {
		if ok, why := Injectable(e); !ok {
			t.Errorf("paper-catalog entry %s reported uninjectable: %s", e.Name, why)
		}
	}
	mixed := march.CatalogEntry{
		Name:    "mixed",
		FP:      fp.MustNew(fp.NewSOS(fp.InitNone, fp.CWBL(1), fp.CW(0)), 1, fp.RNone),
		Partial: true,
	}
	ok, why := Injectable(mixed)
	if ok {
		t.Fatal("mixed-target completion reported injectable")
	}
	if !strings.Contains(why, "mixes victim and bit-line") {
		t.Fatalf("reason: %s", why)
	}
}
