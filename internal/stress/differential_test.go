package stress

import (
	"reflect"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/march"
)

// TestStressMatrixDifferential is the harness's ground truth: the
// nominal corner of a stress matrix must be bit-identical to running
// the plain pipeline directly — analysis.BuildInventory for the rows,
// march.CoverageMatrixWith for the coverage — because the nominal
// derivation is the identity. Checked for both inventory engines and
// both march backends; any divergence means the stress axis changed
// the physics it claims merely to organize.
func TestStressMatrixDifferential(t *testing.T) {
	lowVDD, _ := ParseSpec("low-vdd")
	cases := []struct {
		name      string
		engine    string
		marchEng  march.Engine
		rdefs, us []float64
	}{
		{"behav-memsim", "behav", march.ScalarEngine{}, []float64{1e4, 1e6}, []float64{0, 1.5, 3.3}},
		{"behav-bitsim", "behav", bitsim.New(), []float64{1e4, 1e6}, []float64{0, 1.5, 3.3}},
		{"spice-memsim", "spice", march.ScalarEngine{}, []float64{1e4, 1e6}, []float64{0, 3.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opens := opensByID(t, 1, 5)
			tests := testsNamed(t, "March PF")
			res, err := Analyze(Config{
				Corners: []Spec{Nominal(), lowVDD},
				Engine:  tc.engine, MarchEngine: tc.marchEng,
				Opens: opens, RDefs: tc.rdefs, Us: tc.us,
				Tests: tests, Rows: 2, Cols: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.MarchEngineName != tc.marchEng.Name() {
				t.Fatalf("march engine recorded as %q", res.MarchEngineName)
			}

			// The direct path: same grid, no stress package involved.
			var factory analysis.Factory
			var model analysis.Fingerprint
			switch tc.engine {
			case "behav":
				p := behav.DefaultParams()
				factory, model = behav.NewFactory(p), behav.Fingerprint(p)
			case "spice":
				tech := dram.Default()
				factory = analysis.NewPooledSpiceFactory(tech)
				model, err = analysis.SpiceFingerprint(tech)
				if err != nil {
					t.Fatal(err)
				}
			}
			if res.Nominal().Model != model {
				t.Fatalf("nominal model %s, want base %s", res.Nominal().Model, model)
			}
			direct, err := analysis.BuildInventory(analysis.InventoryConfig{
				Factory: factory, Model: model,
				Opens: opens, RDefs: tc.rdefs, Us: tc.us,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Nominal().Rows, direct) {
				t.Fatal("nominal corner inventory differs from direct BuildInventory")
			}

			injectable := make([]march.CatalogEntry, 0, len(direct))
			for _, e := range CatalogFromRows(direct) {
				if ok, _ := Injectable(e); ok {
					injectable = append(injectable, e)
				}
			}
			directCov, err := march.CoverageMatrixWith(tc.marchEng, tests, injectable, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Nominal().Coverage, directCov) {
				t.Fatal("nominal corner coverage differs from direct CoverageMatrixWith")
			}
		})
	}
}

// TestStressCertificateSound replays the worst-corner certificate
// against exhaustive scalar simulation: every made claim must hold at
// every corner where the family exists, on the certificate geometry
// and on larger ones — zero false claims. The minimum-claim floor
// keeps the test honest: a regression that silently withholds
// everything would otherwise pass vacuously.
func TestStressCertificateSound(t *testing.T) {
	lowVDD, _ := ParseSpec("low-vdd")
	weak, _ := ParseSpec("weak-precharge")
	tests := testsNamed(t, "March PF", "MATS+")
	res, err := Analyze(Config{
		Corners: []Spec{Nominal(), lowVDD, weak},
		Opens:   opensByID(t, 1, 5),
		RDefs:   []float64{1e4, 1e6},
		Us:      []float64{0, 1.5, 3.3},
		Tests:   tests, Rows: 2, Cols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	testByName := map[string]march.Test{}
	for _, mt := range tests {
		testByName[mt.Name] = mt
	}
	entriesByCorner := make([]map[string]march.CatalogEntry, len(res.Corners))
	for ci, run := range res.Corners {
		entriesByCorner[ci] = map[string]march.CatalogEntry{}
		for _, e := range run.Catalog {
			entriesByCorner[ci][e.Name] = e
		}
	}

	verified := 0
	for _, cl := range res.Certificate.Claims {
		if !cl.Claimed {
			continue
		}
		mt := testByName[cl.Test]
		for ci, run := range res.Corners {
			e, present := entriesByCorner[ci][cl.Family]
			if !present {
				continue
			}
			if e.Uncompletable {
				t.Fatalf("claim %s × %s made over an uncompletable entry at corner %s",
					cl.Test, cl.Family, run.Spec.Name)
			}
			if why, bad := run.Uninjectable[cl.Family]; bad {
				t.Fatalf("claim %s × %s made over an uninjectable entry at corner %s: %s",
					cl.Test, cl.Family, run.Spec.Name, why)
			}
			for _, geom := range [][2]int{{2, 2}, {2, 4}, {4, 4}} {
				det, err := march.ScalarEngine{}.Detects(mt, geom[0], geom[1], e)
				if err != nil {
					t.Fatalf("%s × %s at %s on %dx%d: %v",
						cl.Test, cl.Family, run.Spec.Name, geom[0], geom[1], err)
				}
				if !det.Detected {
					t.Fatalf("FALSE CLAIM: %s × %s escapes at corner %s on %dx%d (%d/%d)",
						cl.Test, cl.Family, run.Spec.Name, geom[0], geom[1],
						det.Caught, det.Scenarios)
				}
			}
		}
		verified++
	}
	// Measured on this config: 4 of 50 claims hold (the reduced grid
	// completes few families, and MATS+ proves little). The floor
	// guards against a regression that withholds wholesale, with slack
	// for legitimate physics shifts.
	const minVerified = 3
	if verified < minVerified {
		t.Fatalf("only %d claims verified (want ≥ %d of %d)",
			verified, minVerified, len(res.Certificate.Claims))
	}
	t.Logf("verified %d of %d claims across %d corners", verified, len(res.Certificate.Claims), len(res.Corners))
}
