package stress

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/march"
)

// CornerVerdict is one corner's evidence for a (test, family) claim.
type CornerVerdict struct {
	// Corner names the corner.
	Corner string `json:"corner"`
	// Present reports whether the family appears in the corner's
	// inventory at all.
	Present bool `json:"present"`
	// Possible is the corner row's completion outcome (false also when
	// absent).
	Possible bool `json:"possible"`
	// Completed renders the corner's completed FP ("" when absent or
	// uncompletable).
	Completed string `json:"completed,omitempty"`
	// Proved is the static detection prover's verdict for the corner's
	// catalog entry (Unknown when absent).
	Proved string `json:"proved,omitempty"`
	// Simulated reports the engine's detection verdict at the matrix
	// geometry, with the scenario counts.
	Simulated bool `json:"simulated"`
	Caught    int  `json:"caught"`
	Scenarios int  `json:"scenarios"`
}

// Claim is one (test, family) row of the worst-corner certificate. A
// claim is made only when, at every corner where the family exists, the
// completion is possible, the static prover proves detection, and the
// engine's simulation at the matrix geometry detects every scenario —
// the conjunction over corners is what "worst-corner" means.
type Claim struct {
	Test   string `json:"test"`
	Family string `json:"family"`
	// Claimed is the worst-corner coverage claim.
	Claimed bool `json:"claimed"`
	// Reason explains a withheld claim ("" when claimed).
	Reason string `json:"reason,omitempty"`
	// Corners carries the per-corner evidence, in matrix corner order
	// (corners where the family is absent included, marked Present
	// false).
	Corners []CornerVerdict `json:"corners"`
}

// Certificate is the worst-corner coverage certificate: every march
// test crossed with every fault family present at any corner.
type Certificate struct {
	// Rows and Cols are the simulation geometry behind the Simulated
	// verdicts; the Proved verdicts are geometry-quantified.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Claims holds tests in submission order, families sorted within a
	// test.
	Claims []Claim `json:"claims"`
}

// Claimed counts the made claims.
func (c Certificate) Claimed() int {
	n := 0
	for _, cl := range c.Claims {
		if cl.Claimed {
			n++
		}
	}
	return n
}

// buildCertificate assembles the worst-corner certificate from the
// per-corner inventories, coverage matrices and the static prover.
func buildCertificate(res *Result, tests []march.Test) Certificate {
	// Collect the family universe and each corner's entry per family.
	var families []FamilyKey
	seen := map[FamilyKey]bool{}
	entries := make([]map[string]march.CatalogEntry, len(res.Corners))
	for ci, run := range res.Corners {
		entries[ci] = map[string]march.CatalogEntry{}
		for ri, e := range run.Catalog {
			entries[ci][e.Name] = e
			k := familyOf(run.Rows[ri])
			if !seen[k] {
				seen[k] = true
				families = append(families, k)
			}
		}
	}
	sort.Slice(families, func(a, b int) bool { return families[a].less(families[b]) })

	// Index coverage rows: corner → test → family name → result.
	cover := make([]map[string]map[string]march.CoverageResult, len(res.Corners))
	for ci, run := range res.Corners {
		cover[ci] = map[string]map[string]march.CoverageResult{}
		for _, cr := range run.Coverage {
			m := cover[ci][cr.Test]
			if m == nil {
				m = map[string]march.CoverageResult{}
				cover[ci][cr.Test] = m
			}
			m[cr.Fault] = cr
		}
	}

	cert := Certificate{Rows: res.Rows, Cols: res.Cols}
	for _, t := range tests {
		for _, fam := range families {
			cl := Claim{Test: t.Name, Family: fam.String(), Claimed: true}
			anywhere := false
			for ci, run := range res.Corners {
				e, present := entries[ci][fam.String()]
				cv := CornerVerdict{Corner: run.Spec.Name, Present: present}
				if !present {
					cl.Corners = append(cl.Corners, cv)
					continue
				}
				anywhere = true
				cv.Possible = !e.Uncompletable
				if cv.Possible {
					cv.Completed = e.FP.String()
				}
				proof := march.ProveDetects(t, e)
				cv.Proved = proof.Verdict.String()
				if cr, ok := cover[ci][t.Name][fam.String()]; ok {
					cv.Simulated, cv.Caught, cv.Scenarios = cr.Detected, cr.Caught, cr.Scenarios
				}
				withhold := func(format string, args ...any) {
					if cl.Claimed {
						cl.Claimed = false
						cl.Reason = fmt.Sprintf(format, args...)
					}
				}
				injectReason, uninjectable := run.Uninjectable[fam.String()]
				switch {
				case e.Uncompletable:
					withhold("uncompletable at corner %s (no march test can sensitize it)", run.Spec.Name)
				case proof.Verdict != march.VerdictDetects:
					withhold("not statically proven at corner %s (prover: %s)", run.Spec.Name, proof.Verdict)
				case uninjectable:
					withhold("completion not injectable at corner %s (%s)", run.Spec.Name, injectReason)
				case !cv.Simulated:
					withhold("escapes simulation at corner %s (%d/%d scenarios caught)", run.Spec.Name, cv.Caught, cv.Scenarios)
				}
				cl.Corners = append(cl.Corners, cv)
			}
			if !anywhere {
				cl.Claimed = false
				cl.Reason = "family absent from every corner"
			}
			cert.Claims = append(cert.Claims, cl)
		}
	}
	return cert
}
