package stress

import (
	"math"
	"reflect"
	"testing"

	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
)

// assertFinite walks every float64 field of a struct (recursively) and
// fails on NaN or ±Inf — the invariant FuzzCornerDerive enforces on
// every accepted derivation.
func assertFinite(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s = %g is not finite", path, f)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertFinite(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	}
}

// FuzzCornerDerive throws arbitrary strings at the corner parser and
// the derivation: any input must either be rejected with an error or
// produce a Technology (and analytical Params) that dram's lint
// accepts with zero errors and that contains no NaN or Inf anywhere.
// Nothing out-of-range may be accepted silently — the property the
// whole "lint-clean by construction" claim rests on.
func FuzzCornerDerive(f *testing.F) {
	for _, c := range DefaultCorners() {
		f.Add(c.String())
		f.Add(c.Name)
	}
	f.Add("x:vdd=1.05,temp=85")
	f.Add("x:temp=nan")
	f.Add("x:vdd=-1")
	f.Add("x:vdd=1e309")
	f.Add("x:bleq=-0.3,vref=-0.3")
	f.Add("x:vpp=0.0001")
	f.Add(":vdd=1")
	f.Add("x:vdd")
	f.Add("x:warp=9")
	f.Add("x:temp=-1000")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		tech, err := spec.Derive(dram.Default())
		if err == nil {
			if findings := dram.LintTechnology(tech); findings.Count(lint.Error) > 0 {
				t.Fatalf("corner %q derived a technology lint rejects:\n%s", in, findings.Summary())
			}
			assertFinite(t, reflect.ValueOf(tech), "Technology")
		}
		p, perr := spec.DeriveParams(behav.DefaultParams())
		if (err == nil) != (perr == nil) {
			t.Fatalf("corner %q: Derive err=%v but DeriveParams err=%v", in, err, perr)
		}
		if perr == nil {
			assertFinite(t, reflect.ValueOf(p), "Params")
		}
	})
}
