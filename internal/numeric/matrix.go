// Package numeric provides the small dense linear-algebra kernel used by
// the circuit simulator: dense matrices, LU factorization with partial
// pivoting, and vector helpers.
//
// The modified-nodal-analysis (MNA) systems produced by the DRAM column
// netlists in this repository are small (tens of unknowns), so a dense
// solver with partial pivoting is both simple and fast enough; sparse
// storage would only add complexity at this scale.
package numeric

import "fmt"

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
// It panics if rows or cols is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j. MNA stamping is additive,
// so this is the primitive the circuit stamps use.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

// Zero resets all elements to zero, keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Row returns the storage slice of row i. Writing through it mutates the
// matrix; it is the fast path used by the simulator's assembly and
// reduction loops, which touch every row once per Newton iteration and
// cannot afford per-element bounds checks.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("numeric: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src.
// It panics if the dimensions differ.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("numeric: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// MulVec computes y = m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("numeric: MulVec dimension mismatch")
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("% .6g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}
