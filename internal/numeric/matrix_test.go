package numeric

import (
	"strings"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Errorf("At(1,2) = %g, want 4.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 5 {
		t.Errorf("after Add, At(1,2) = %g, want 5", got)
	}
	m.Zero()
	if got := m.At(1, 2); got != 0 {
		t.Errorf("after Zero, At(1,2) = %g, want 0", got)
	}
}

func TestMatrixCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMatrixCopyFrom(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 7)
	b := NewMatrix(2, 2)
	b.CopyFrom(a)
	if b.At(0, 1) != 7 {
		t.Error("CopyFrom did not copy contents")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6] · [1 1 1] = [6 15]
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
}

func TestMatrixPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"bad dims", func() { NewMatrix(0, 3) }},
		{"index out of range", func() { NewMatrix(2, 2).At(2, 0) }},
		{"negative index", func() { NewMatrix(2, 2).Set(-1, 0, 1) }},
		{"mulvec mismatch", func() { NewMatrix(2, 2).MulVec([]float64{1}) }},
		{"copyfrom mismatch", func() { NewMatrix(2, 2).CopyFrom(NewMatrix(3, 3)) }},
		{"factorize non-square", func() { Factorize(NewMatrix(2, 3)) }}, //nolint:errcheck
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1.5)
	if s := m.String(); !strings.Contains(s, "1.5") {
		t.Errorf("String() = %q does not contain element", s)
	}
}
