package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorizeSolveIdentity(t *testing.T) {
	n := 4
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, -2, 3.5, 0}
	x, err := SolveSystem(a, b)
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestFactorizeSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	if !ApproxEqual(x[0], 1, 1e-12) || !ApproxEqual(x[1], 3, 1e-12) {
		t.Errorf("got x = %v, want [1 3]", x)
	}
}

func TestFactorizeRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	if !ApproxEqual(x[0], 3, 1e-12) || !ApproxEqual(x[1], 2, 1e-12) {
		t.Errorf("got x = %v, want [3 2]", x)
	}
}

func TestFactorizeSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factorize(a); err != ErrSingular {
		t.Errorf("Factorize(singular) err = %v, want ErrSingular", err)
	}
}

func TestFactorizeDoesNotModifyInput(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 3)
	a.Set(1, 0, 6)
	a.Set(1, 1, 3)
	orig := a.Clone()
	if _, err := Factorize(a); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if a.At(i, j) != orig.At(i, j) {
				t.Fatalf("input modified at (%d,%d)", i, j)
			}
		}
	}
}

func TestLUReuseMultipleRHS(t *testing.T) {
	a := randomDiagDominant(rand.New(rand.NewSource(7)), 5)
	f, err := Factorize(a)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	for trial := 0; trial < 4; trial++ {
		b := make([]float64, 5)
		for i := range b {
			b[i] = float64(trial*5 + i)
		}
		x := f.Solve(b)
		back := a.MulVec(x)
		if MaxAbsDiff(back, b) > 1e-9 {
			t.Errorf("trial %d: A·x differs from b by %g", trial, MaxAbsDiff(back, b))
		}
	}
}

// randomDiagDominant builds a well-conditioned random matrix: random
// entries with a dominant diagonal, mimicking the structure of MNA
// conductance matrices.
func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			a.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

// TestSolveRoundTripProperty: for random diagonally dominant A and random
// b, solving then multiplying back recovers b.
func TestSolveRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*20 - 10
		}
		x, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(a.MulVec(x), b) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGaussMatchesLUProperty: the two solvers agree on random systems.
func TestGaussMatchesLUProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x1, err1 := SolveSystem(a, b)
		x2, err2 := GaussSolve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return MaxAbsDiff(x1, x2) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGaussSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2) // all zeros
	if _, err := GaussSolve(a, []float64{1, 1}); err != ErrSingular {
		t.Errorf("GaussSolve(singular) err = %v, want ErrSingular", err)
	}
}
