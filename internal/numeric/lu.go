package numeric

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular and cannot
// be factorized. For MNA systems this usually indicates a floating node
// with no DC path to ground; the circuit layer guards against that with
// gmin conductances, so seeing this error normally means a malformed
// netlist.
var ErrSingular = errors.New("numeric: matrix is singular")

// LU holds an LU factorization with partial pivoting of a square matrix,
// PA = LU. It can be reused to solve for multiple right-hand sides.
type LU struct {
	lu   *Matrix
	pivx []int
	n    int
}

// Factorize computes the LU factorization of the square matrix a with
// partial (row) pivoting. The input matrix is not modified.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		panic("numeric: Factorize requires a square matrix")
	}
	n := a.Rows()
	f := &LU{lu: a.Clone(), pivx: make([]int, n), n: n}
	for i := range f.pivx {
		f.pivx[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Find the pivot: largest magnitude in column k at or below row k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			f.swapRows(p, k)
			f.pivx[p], f.pivx[k] = f.pivx[k], f.pivx[p]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return f, nil
}

func (f *LU) swapRows(i, j int) {
	for c := 0; c < f.n; c++ {
		vi, vj := f.lu.At(i, c), f.lu.At(j, c)
		f.lu.Set(i, c, vj)
		f.lu.Set(j, c, vi)
	}
}

// Solve returns x such that A·x = b for the factorized A.
// It panics if len(b) does not match the matrix dimension.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("numeric: Solve dimension mismatch")
	}
	x := make([]float64, f.n)
	// Apply the permutation: x = P·b.
	perm := make([]int, f.n)
	for to := range perm {
		perm[to] = f.pivx[to]
	}
	for i := 0; i < f.n; i++ {
		x[i] = b[perm[i]]
	}
	// Forward substitution, L has an implicit unit diagonal.
	for i := 1; i < f.n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution.
	for i := f.n - 1; i >= 0; i-- {
		for j := i + 1; j < f.n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// SolveSystem factorizes a and solves a·x = b in one call.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// GaussSolve solves a·x = b by plain Gaussian elimination with partial
// pivoting, destroying neither input. It exists as the baseline for the
// solver ablation benchmark; LU factorization wins once a system is
// solved for more than one right-hand side (as Newton iteration does
// when the Jacobian is reused).
func GaussSolve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		panic("numeric: GaussSolve dimension mismatch")
	}
	n := a.Rows()
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p, max := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			for c := 0; c < n; c++ {
				vp, vk := m.At(p, c), m.At(k, c)
				m.Set(p, c, vk)
				m.Set(k, c, vp)
			}
			x[p], x[k] = x[k], x[p]
		}
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / m.At(k, k)
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				m.Add(i, j, -f*m.At(k, j))
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= m.At(i, j) * x[j]
		}
		x[i] /= m.At(i, i)
	}
	return x, nil
}
