package numeric

import "math"

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b. It panics on length mismatch. The Newton loops use it as their
// convergence norm.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: MaxAbsDiff length mismatch")
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// NormInf returns the infinity norm (largest absolute element) of v.
func NormInf(v []float64) float64 {
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// Lerp linearly interpolates between a and b: a + t·(b−a).
func Lerp(a, b, t float64) float64 { return a + t*(b-a) }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// For n == 1 it returns just lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi
// inclusive. Both bounds must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("numeric: Logspace bounds must be positive")
	}
	ex := Linspace(math.Log10(lo), math.Log10(hi), n)
	for i, e := range ex {
		ex[i] = math.Pow(10, e)
	}
	if n > 0 {
		ex[0], ex[n-1] = lo, hi
	}
	return ex
}

// ApproxEqual reports whether a and b are within tol of each other,
// where tol is interpreted as an absolute tolerance.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
