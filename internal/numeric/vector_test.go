package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 4, 2.5}); d != 2 {
		t.Errorf("MaxAbsDiff = %g, want 2", d)
	}
	if d := MaxAbsDiff(nil, nil); d != 0 {
		t.Errorf("MaxAbsDiff(nil,nil) = %g, want 0", d)
	}
}

func TestNormInf(t *testing.T) {
	if n := NormInf([]float64{-4, 2, 3}); n != 4 {
		t.Errorf("NormInf = %g, want 4", n)
	}
	if n := NormInf(nil); n != 0 {
		t.Errorf("NormInf(nil) = %g, want 0", n)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 3, 3},
		{-1, 0, 3, 0},
		{2, 0, 3, 2},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if v := Lerp(0, 10, 0.25); v != 2.5 {
		t.Errorf("Lerp = %g, want 2.5", v)
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(v) != len(want) {
		t.Fatalf("len = %d, want %d", len(v), len(want))
	}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if one := Linspace(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Errorf("Linspace n=1 = %v, want [3]", one)
	}
	if z := Linspace(0, 1, 0); z != nil {
		t.Errorf("Linspace n=0 = %v, want nil", z)
	}
}

func TestLogspace(t *testing.T) {
	v := Logspace(10, 1000, 3)
	want := []float64{10, 100, 1000}
	for i := range want {
		if math.Abs(v[i]-want[i])/want[i] > 1e-12 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Logspace with non-positive bound should panic")
		}
	}()
	Logspace(0, 1, 3)
}

// Property: Linspace endpoints are exact and the sequence is monotone.
func TestLinspaceMonotoneProperty(t *testing.T) {
	prop := func(a, b float64, nRaw uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true // avoid overflow in (b−a); out of scope for circuit values
		}
		if a > b {
			a, b = b, a
		}
		n := 2 + int(nRaw%30)
		v := Linspace(a, b, n)
		if v[0] != a || v[n-1] != b {
			return false
		}
		for i := 1; i < n; i++ {
			if v[i] < v[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
