package numeric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWorkspaceMatchesFactorize(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		want, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		ws := NewWorkspace(n)
		if err := ws.Factorize(a); err != nil {
			return false
		}
		got := make([]float64, n)
		ws.Solve(b, got)
		return MaxAbsDiff(got, want) < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := NewWorkspace(6)
	for trial := 0; trial < 5; trial++ {
		a := randomDiagDominant(rng, 6)
		b := make([]float64, 6)
		for i := range b {
			b[i] = rng.Float64()
		}
		if err := ws.Factorize(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := make([]float64, 6)
		ws.Solve(b, x)
		if MaxAbsDiff(a.MulVec(x), b) > 1e-9 {
			t.Errorf("trial %d: residual too large", trial)
		}
	}
}

func TestWorkspaceSingular(t *testing.T) {
	ws := NewWorkspace(2)
	if err := ws.Factorize(NewMatrix(2, 2)); err != ErrSingular {
		t.Errorf("Factorize(zero) err = %v, want ErrSingular", err)
	}
}

func TestWorkspaceDimensionMismatchPanics(t *testing.T) {
	ws := NewWorkspace(3)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	_ = ws.Factorize(NewMatrix(2, 2))
}

func BenchmarkWorkspaceFactorize50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 50)
	ws := NewWorkspace(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorizeAlloc50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}
