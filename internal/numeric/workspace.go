package numeric

import "math"

// Workspace is a reusable LU solve buffer for repeated factorizations of
// same-sized systems, as a Newton loop performs every iteration. It works
// on the matrix's raw storage to avoid per-element bounds checks and
// allocates nothing after construction.
type Workspace struct {
	n    int
	lu   []float64
	pivx []int
	perm []float64

	// prev holds a pristine copy of the last successfully factorized
	// matrix, enabling FactorizeCached's Newton-bypass: when the next
	// matrix is bit-for-bit identical, the factors in lu are still valid
	// and the O(n³) elimination is skipped.
	prev     []float64
	havePrev bool
}

// NewWorkspace creates a workspace for n×n systems.
func NewWorkspace(n int) *Workspace {
	if n <= 0 {
		panic("numeric: workspace size must be positive")
	}
	return &Workspace{
		n:    n,
		lu:   make([]float64, n*n),
		pivx: make([]int, n),
		perm: make([]float64, n),
		prev: make([]float64, n*n),
	}
}

// Factorize copies the square matrix a into the workspace and LU-factorizes
// it in place with partial pivoting.
func (w *Workspace) Factorize(a *Matrix) error {
	w.havePrev = false
	return w.factorize(a)
}

// FactorizeCached is Factorize with a Newton-bypass: when a is bit-for-bit
// identical to the last matrix this workspace factorized, the existing
// factors are reused and no elimination runs. The n² comparison costs a
// small fraction of the n³/3 elimination it avoids. It reports whether the
// cached factors were reused.
func (w *Workspace) FactorizeCached(a *Matrix) (reused bool, err error) {
	n := w.n
	if a.Rows() != n || a.Cols() != n {
		panic("numeric: workspace dimension mismatch")
	}
	if w.havePrev {
		same := true
		for i, v := range a.data {
			// Bit-level identity, not numeric equality: a NaN entry or a
			// -0/+0 flip must force refactorization.
			if math.Float64bits(v) != math.Float64bits(w.prev[i]) {
				same = false
				break
			}
		}
		if same {
			return true, nil
		}
	}
	if err := w.factorize(a); err != nil {
		w.havePrev = false
		return false, err
	}
	copy(w.prev, a.data)
	w.havePrev = true
	return false, nil
}

// InvalidateCache drops the memory of the last factorized matrix, forcing
// the next FactorizeCached to run a full elimination.
func (w *Workspace) InvalidateCache() { w.havePrev = false }

func (w *Workspace) factorize(a *Matrix) error {
	n := w.n
	if a.Rows() != n || a.Cols() != n {
		panic("numeric: workspace dimension mismatch")
	}
	copy(w.lu, a.data)
	lu := w.lu
	for i := range w.pivx {
		w.pivx[i] = i
	}
	for k := 0; k < n; k++ {
		p, max := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return ErrSingular
		}
		if p != k {
			rp, rk := lu[p*n:p*n+n], lu[k*n:k*n+n]
			for c := range rp {
				rp[c], rk[c] = rk[c], rp[c]
			}
			w.pivx[p], w.pivx[k] = w.pivx[k], w.pivx[p]
		}
		pivot := lu[k*n+k]
		rowK := lu[k*n : k*n+n]
		for i := k + 1; i < n; i++ {
			rowI := lu[i*n : i*n+n]
			m := rowI[k] / pivot
			rowI[k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return nil
}

// Solve writes the solution of the factorized system for right-hand side
// b into x. b and x may alias. It panics on length mismatch.
func (w *Workspace) Solve(b, x []float64) {
	n := w.n
	if len(b) != n || len(x) != n {
		panic("numeric: workspace Solve dimension mismatch")
	}
	lu := w.lu
	for i := 0; i < n; i++ {
		w.perm[i] = b[w.pivx[i]]
	}
	copy(x, w.perm)
	for i := 1; i < n; i++ {
		row := lu[i*n : i*n+n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n : i*n+n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}
