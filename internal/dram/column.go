package dram

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/spice"
)

// Defect-site names. Each is a series resistor in the netlist that is
// RWire (≈0 Ω) when healthy and is set to R_def to inject the
// corresponding open of Figure 2.
const (
	SiteOpen1Cell    = "open1.cell"      // inside the victim cell, cap ↔ access device
	SiteOpen2RefCell = "open2.refcell"   // inside the reference cell used for reads
	SiteOpen3Pre     = "open3.precharge" // precharge-level feed into the precharge devices
	SiteOpen4BLPre   = "open4.bl.pre"    // BT between precharge devices and cells (Figure 1)
	SiteOpen5BLCell  = "open5.bl.cell"   // BT between cells and reference cells
	SiteOpen6BLRef   = "open6.bl.ref"    // BT between reference cells and sense amplifier
	SiteOpen7SA      = "open7.sa"        // inside the SA, common source ↔ enable device
	SiteOpen8BLIO    = "open8.bl.io"     // BT between sense amplifier and column select
	SiteOpen9WL      = "open9.wl"        // word line between driver and victim's gate
)

// Short- and bridge-defect sites. Unlike the opens, these are resistors
// that are ABSENT when healthy (ROff) and injected by LOWERING the
// resistance. The paper's Section 2 argues that shorts and bridges do
// not restrict current flow and therefore produce no floating voltages
// and no partial faults; these sites exist to reproduce that negative
// result.
const (
	SiteShortCellGnd = "short.cell.gnd"   // victim storage node to ground
	SiteShortBLVdd   = "short.bl.vdd"     // BT cell region to VDD
	SiteBridgeBLBL   = "bridge.bl.bl"     // BT to BC (intra-pair bridge)
	SiteBridgeCells  = "bridge.cell.cell" // victim to the neighbouring cell
)

// Interesting net names, exported for the analysis and defect layers.
const (
	NetBTPre  = "btP" // BT precharge stub
	NetBTCell = "btC" // BT cell region
	NetBTRef  = "btR" // BT reference region
	NetBTSA   = "btS" // BT sense-amp region
	NetBTIO   = "btX" // BT column-select region
	NetBCPre  = "bcP"
	NetBCCell = "bcC"
	NetBCRef  = "bcR"
	NetBCSA   = "bcS"
	NetBCIO   = "bcX"

	NetCell0Store = "c0s"  // victim storage node
	NetCell1Store = "c1s"  // same-BL aggressor storage node
	NetRefStore   = "dcs"  // reference (dummy) cell storage node on BC
	NetWL0Gate    = "wl0g" // victim access gate past the Open 9 site
	NetOutBuf     = "obuf" // read output buffer hold node
	NetIO         = "io"
	NetIOB        = "iob"
	NetSAN        = "san"
	NetSAP        = "sap"
)

// Control-signal names.
const (
	sigPre  = "pre"
	sigWL0  = "wl0"
	sigWL1  = "wl1"
	sigDWLC = "dwlc"
	sigDWLT = "dwlt"
	sigDRef = "dref"
	sigSEN  = "sen"
	sigSENB = "senb"
	sigCSL  = "csl"
	sigREN  = "ren"
	sigWD   = "wd"
	sigWDB  = "wdb"
	sigWEN  = "wen"
)

// NumCells is the number of regular cells on BT: cell 0 is the victim of
// the fault analysis, cell 1 the same-bit-line aggressor that completing
// operations address.
const NumCells = 2

// Column is the electrical model of one DRAM cell-array column (the
// paper's Figure 2) attached to a transient engine.
type Column struct {
	Tech Technology

	ckt      *circuit.Circuit
	eng      *spice.Engine
	ctl      map[string]*device.VSource
	ctlV     map[string]float64
	sites    map[string]*device.Resistor
	healthy  map[string]float64
	buildErr error

	// Observe, when non-nil, is called after every transient step.
	Observe func(*spice.Engine)
}

// NewColumn builds the column netlist for the given technology and powers
// the rails. Call PowerUp before issuing operations. A non-nil error
// means the netlist itself is malformed (duplicate designator, self-loop)
// — a construction bug, not a defect under study.
func NewColumn(tech Technology) (*Column, error) {
	c := &Column{
		Tech:    tech,
		ckt:     circuit.New(),
		ctl:     map[string]*device.VSource{},
		ctlV:    map[string]float64{},
		sites:   map[string]*device.Resistor{},
		healthy: map[string]float64{},
	}
	c.build()
	if c.buildErr != nil {
		return nil, fmt.Errorf("dram: building column netlist: %w", c.buildErr)
	}
	c.ckt.Freeze()
	eng, err := spice.NewEngine(c.ckt, spice.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("dram: building column engine: %w", err)
	}
	c.eng = eng
	return c, nil
}

// MustNewColumn is NewColumn for contexts where the fixed built-in
// netlist is known-good (tests, examples); it panics on build errors.
func MustNewColumn(tech Technology) *Column {
	c, err := NewColumn(tech)
	if err != nil {
		panic(err)
	}
	return c
}

// node is shorthand for net creation/lookup.
func (c *Column) node(name string) int { return c.ckt.Node(name) }

// add registers an element, retaining the first construction error.
func (c *Column) add(e circuit.Element) {
	if err := c.ckt.Add(e); err != nil && c.buildErr == nil {
		c.buildErr = err
	}
}

// addCtl creates a control voltage source on the named net, initially 0V.
func (c *Column) addCtl(sig, net string) {
	src := device.NewVSource("V_"+sig, c.node(net), 0, device.DC(0))
	c.add(src)
	c.ctl[sig] = src
	c.ctlV[sig] = 0
}

// addSite creates a named open-defect-site resistor (healthy = RWire).
func (c *Column) addSite(site string, a, b int) {
	r := device.NewResistor(SiteElementName(site), a, b, c.Tech.RWire)
	c.add(r)
	c.sites[site] = r
	c.healthy[site] = c.Tech.RWire
}

// addShortSite creates a named short/bridge-site resistor (healthy =
// ROff, i.e. absent).
func (c *Column) addShortSite(site string, a, b int) {
	r := device.NewResistor(SiteElementName(site), a, b, c.Tech.ROff)
	c.add(r)
	c.sites[site] = r
	c.healthy[site] = c.Tech.ROff
}

// SiteElementName returns the designator of the series resistor that
// models the named defect site, for analyses that address the netlist by
// element (e.g. netlint's floating-line prediction).
func SiteElementName(site string) string { return "R_" + site }

func (c *Column) build() {
	t := c.Tech
	gnd := 0

	// Rails.
	vddn := c.node("vddn")
	c.add(device.NewVSource("V_vdd", vddn, gnd, device.DC(t.VDD)))
	vrefn := c.node("vref")
	c.add(device.NewVSource("V_refcell", vrefn, gnd, device.DC(t.VRefCell)))
	vbleqS := c.node("vbleqS")
	c.add(device.NewVSource("V_bleq", vbleqS, gnd, device.DC(t.VBLEQ)))
	// Each bit line has its own precharge feed (no equalizer bridging the
	// pair), so an open in the BT feed — the paper's Open 3 — leaves BT
	// floating while BC still precharges.
	vbleqFT := c.node("vbleqFT")
	c.addSite(SiteOpen3Pre, vbleqS, vbleqFT)
	vbleqFC := c.node("vbleqFC")
	c.add(device.NewResistor("R_bleqC", vbleqS, vbleqFC, t.RWire))

	// Bit-line segments with capacitance and defect-site series resistors.
	bt := []int{c.node(NetBTPre), c.node(NetBTCell), c.node(NetBTRef), c.node(NetBTSA), c.node(NetBTIO)}
	bc := []int{c.node(NetBCPre), c.node(NetBCCell), c.node(NetBCRef), c.node(NetBCSA), c.node(NetBCIO)}
	segC := []float64{t.CBLPre, t.CBLCell, t.CBLRef, t.CBLSA, t.CBLIO}
	for i, n := range bt {
		c.add(device.NewCapacitor(fmt.Sprintf("C_bt%d", i), n, gnd, segC[i]))
		c.add(device.NewCapacitor(fmt.Sprintf("C_bc%d", i), bc[i], gnd, segC[i]))
	}
	c.addSite(SiteOpen4BLPre, bt[0], bt[1])
	c.addSite(SiteOpen5BLCell, bt[1], bt[2])
	c.addSite(SiteOpen6BLRef, bt[2], bt[3])
	c.addSite(SiteOpen8BLIO, bt[3], bt[4])
	for i := 0; i < 4; i++ {
		c.add(device.NewResistor(fmt.Sprintf("R_bc%d", i), bc[i], bc[i+1], t.RWire))
	}

	nmos := device.DefaultNMOS()
	nmos.W *= t.WWLBoost
	pmos := device.DefaultPMOS()

	// Precharge devices: BT and BC to the precharge level.
	c.addCtl(sigPre, "pre")
	pre := c.node("pre")
	c.add(device.NewNMOS("M_pbt", bt[0], pre, vbleqFT, nmos))
	c.add(device.NewNMOS("M_pbc", bc[0], pre, vbleqFC, nmos))

	// Victim cell (cell 0) on BT with Open 1 and Open 9 sites.
	c.addCtl(sigWL0, "wl0d")
	wl0d := c.node("wl0d")
	wl0g := c.node(NetWL0Gate)
	c.addSite(SiteOpen9WL, wl0d, wl0g)
	c.add(device.NewCapacitor("C_wl0g", wl0g, gnd, t.CWLGate))
	c0a := c.node("c0a")
	c.add(device.NewNMOS("M_c0", bt[1], wl0g, c0a, nmos))
	c0s := c.node(NetCell0Store)
	c.addSite(SiteOpen1Cell, c0a, c0s)
	c.add(device.NewCapacitor("C_c0", c0s, gnd, t.CCell))

	// Aggressor cell (cell 1) on the same BT, defect-free.
	c.addCtl(sigWL1, "wl1")
	wl1 := c.node("wl1")
	c1s := c.node(NetCell1Store)
	c.add(device.NewNMOS("M_c1", bt[1], wl1, c1s, nmos))
	c.add(device.NewCapacitor("C_c1", c1s, gnd, t.CCell))

	// Reference (dummy) cell on BC, fired when reading BT cells, with the
	// Open 2 site; reset to VRefCell during precharge.
	c.addCtl(sigDWLC, "dwlc")
	c.addCtl(sigDRef, "dref")
	dwlc := c.node("dwlc")
	dref := c.node("dref")
	dca := c.node("dca")
	c.add(device.NewNMOS("M_dc", bc[2], dwlc, dca, nmos))
	dcs := c.node(NetRefStore)
	c.addSite(SiteOpen2RefCell, dca, dcs)
	c.add(device.NewCapacitor("C_dc", dcs, gnd, t.CRefCell))
	c.add(device.NewNMOS("M_dcr", dcs, dref, vrefn, nmos))

	// Mirror dummy cell on BT (fires for BC-side reads; structural only).
	c.addCtl(sigDWLT, "dwlt")
	dwlt := c.node("dwlt")
	dts := c.node("dts")
	c.add(device.NewNMOS("M_dt", bt[2], dwlt, dts, nmos))
	c.add(device.NewCapacitor("C_dt", dts, gnd, t.CRefCell))
	c.add(device.NewNMOS("M_dtr", dts, dref, vrefn, nmos))

	// Sense amplifier: cross-coupled pairs with enable devices; the Open 7
	// site sits between the NMOS common source and its enable transistor.
	san := c.node(NetSAN)
	sap := c.node(NetSAP)
	// The imbalance strengthens the devices that drive BT high / BC low,
	// fixing the zero-differential resolution polarity (see Technology).
	nmosStrong := nmos
	nmosStrong.W *= 1 + t.SAImbalance
	pmosStrong := pmos
	pmosStrong.W *= 1 + t.SAImbalance
	c.add(device.NewNMOS("M_sn1", bt[3], bc[3], san, nmos))
	c.add(device.NewNMOS("M_sn2", bc[3], bt[3], san, nmosStrong))
	c.add(device.NewPMOS("M_sp1", bt[3], bc[3], sap, pmosStrong))
	c.add(device.NewPMOS("M_sp2", bc[3], bt[3], sap, pmos))
	c.add(device.NewCapacitor("C_san", san, gnd, t.CSACommon))
	c.add(device.NewCapacitor("C_sap", sap, gnd, t.CSACommon))
	c.addCtl(sigSEN, "sen")
	c.addCtl(sigSENB, "senb")
	sanE := c.node("sanE")
	c.addSite(SiteOpen7SA, san, sanE)
	senNode := c.node("sen")
	senbNode := c.node("senb")
	c.add(device.NewNMOS("M_sen", sanE, senNode, gnd, nmos))
	c.add(device.NewPMOS("M_sep", sap, senbNode, vddn, pmos))
	// SA common nodes precharge from the healthy feed.
	c.add(device.NewNMOS("M_psan", san, pre, vbleqFC, nmos))
	c.add(device.NewNMOS("M_psap", sap, pre, vbleqFC, nmos))

	// Column select into the IO pair; wider devices so the write driver
	// can overpower the sense amplifier.
	c.addCtl(sigCSL, "csl")
	csl := c.node("csl")
	csn := nmos
	csn.W = 4e-6
	io := c.node(NetIO)
	iob := c.node(NetIOB)
	c.add(device.NewNMOS("M_cs1", bt[4], csl, io, csn))
	c.add(device.NewNMOS("M_cs2", bc[4], csl, iob, csn))
	c.add(device.NewCapacitor("C_io", io, gnd, t.CIO))
	c.add(device.NewCapacitor("C_iob", iob, gnd, t.CIO))

	// Write driver: switched rail drivers onto IO/IOB.
	c.addCtl(sigWD, "wd")
	c.addCtl(sigWDB, "wdb")
	c.addCtl(sigREN, "ren")
	wd := c.node("wd")
	wdb := c.node("wdb")
	c.addCtl(sigWEN, "wen")
	wen := c.node("wen")
	c.add(device.NewSwitch("SW_wd", io, wd, wen, gnd, t.VDD/2, t.RWriteDriver, t.ROff))
	c.add(device.NewSwitch("SW_wdb", iob, wdb, wen, gnd, t.VDD/2, t.RWriteDriver, t.ROff))

	// Read output buffer: sampled from IO through a switch; the hold cap
	// keeps the last read value — the "state of the output buffer" the
	// paper treats as a floating initialization target.
	ren := c.node("ren")
	obuf := c.node(NetOutBuf)
	c.add(device.NewSwitch("SW_out", io, obuf, ren, gnd, t.VDD/2, t.ROutSwitch, t.ROff))
	c.add(device.NewCapacitor("C_out", obuf, gnd, t.COut))

	// Short/bridge sites (absent when healthy).
	c.addShortSite(SiteShortCellGnd, c0s, gnd)
	c.addShortSite(SiteShortBLVdd, bt[1], vddn)
	c.addShortSite(SiteBridgeBLBL, bt[1], bc[1])
	c.addShortSite(SiteBridgeCells, c0s, c1s)
}

// Engine exposes the underlying transient engine (used by the analysis to
// set floating node voltages).
func (c *Column) Engine() *spice.Engine { return c.eng }

// Circuit exposes the underlying netlist for static analysis (netlint).
// Callers must not mutate it.
func (c *Column) Circuit() *circuit.Circuit { return c.ckt }

// SetSiteResistance injects an open of the given resistance at the named
// defect site. Restoring health means setting it back to Tech.RWire.
func (c *Column) SetSiteResistance(site string, ohms float64) {
	r, ok := c.sites[site]
	if !ok {
		panic(fmt.Sprintf("dram: unknown defect site %q", site))
	}
	r.SetResistance(ohms)
	// The site resistor is part of the engine's cached static stamp.
	c.eng.InvalidateStamps()
}

// Reset returns the column to the state of a freshly built one: every
// defect site healthy, every control source at DC 0 V, engine solution,
// clock and element state zeroed. Together with SetSiteResistance and
// PowerUp it lets a pool recycle columns across sweep grid points
// instead of rebuilding the netlist, reproducing the fresh-build state
// bit for bit (the reset column takes exactly the same code path a new
// one would).
func (c *Column) Reset() {
	for site := range c.sites {
		c.RestoreSite(site)
	}
	for sig, src := range c.ctl {
		src.SetWaveform(device.DC(0))
		c.ctlV[sig] = 0
	}
	c.eng.Reset()
}

// State is an opaque snapshot of a column's full dynamic state, as
// captured by Snapshot and reinstated by Restore.
type State struct {
	x     []float64
	time  float64
	waves map[string]device.Waveform
	ctlV  map[string]float64
}

// Snapshot captures the column's dynamic state: node voltages, clock,
// scheduled control waveforms and their logical levels. Defect-site
// resistances are deliberately not captured — a snapshot may only be
// restored onto the same column (or one configured identically), which
// is how the analysis layer's replay cache uses it. Waveform objects are
// immutable once scheduled, so the snapshot shares them.
func (c *Column) Snapshot() *State {
	s := &State{
		time:  c.eng.Time(),
		waves: make(map[string]device.Waveform, len(c.ctl)),
		ctlV:  make(map[string]float64, len(c.ctlV)),
	}
	s.x, s.time = c.eng.State()
	for sig, src := range c.ctl {
		s.waves[sig] = src.Waveform()
	}
	for sig, v := range c.ctlV {
		s.ctlV[sig] = v
	}
	return s
}

// Restore reinstates a Snapshot taken from this column (or an
// identically configured one). Only valid under backward-Euler
// integration — the default for every column engine.
func (c *Column) Restore(s *State) {
	c.eng.RestoreState(s.x, s.time)
	for sig, src := range c.ctl {
		src.SetWaveform(s.waves[sig])
		c.ctlV[sig] = s.ctlV[sig]
	}
}

// SiteResistance returns the current resistance of a defect site.
func (c *Column) SiteResistance(site string) float64 {
	r, ok := c.sites[site]
	if !ok {
		panic(fmt.Sprintf("dram: unknown defect site %q", site))
	}
	return r.Resistance()
}

// Sites returns all defect-site names (opens, shorts and bridges).
func (c *Column) Sites() []string {
	out := make([]string, 0, len(c.sites))
	for s := range c.sites {
		out = append(out, s)
	}
	return out
}

// HealthyResistance returns the defect-free value of a site: RWire for
// open sites, ROff for short/bridge sites.
func (c *Column) HealthyResistance(site string) float64 {
	h, ok := c.healthy[site]
	if !ok {
		panic(fmt.Sprintf("dram: unknown defect site %q", site))
	}
	return h
}

// RestoreSite returns a site to its healthy value.
func (c *Column) RestoreSite(site string) {
	c.SetSiteResistance(site, c.HealthyResistance(site))
}

// SetNodeVoltages overwrites the state of the named nets with v — the
// paper's floating-voltage initialization.
func (c *Column) SetNodeVoltages(v float64, nets ...string) {
	for _, n := range nets {
		c.eng.SetNodeVoltage(n, v)
	}
}

// Voltage returns the present voltage of the named net.
func (c *Column) Voltage(net string) float64 { return c.eng.Voltage(net) }

// CellVoltage returns the storage-node voltage of cell 0 or 1.
func (c *Column) CellVoltage(cell int) float64 {
	return c.eng.Voltage(c.cellStoreNet(cell))
}

// CellBit classifies the stored voltage of a cell as a logic bit.
func (c *Column) CellBit(cell int) int {
	if c.CellVoltage(cell) > c.Tech.LogicThreshold() {
		return 1
	}
	return 0
}

// OutputVoltage returns the output-buffer voltage.
func (c *Column) OutputVoltage() float64 { return c.eng.Voltage(NetOutBuf) }

// OutputBit classifies the output-buffer voltage as a logic bit.
func (c *Column) OutputBit() int {
	if c.OutputVoltage() > c.Tech.LogicThreshold() {
		return 1
	}
	return 0
}

func (c *Column) cellStoreNet(cell int) string {
	switch cell {
	case 0:
		return NetCell0Store
	case 1:
		return NetCell1Store
	}
	panic(fmt.Sprintf("dram: cell index %d out of range", cell))
}
