package dram

import (
	"fmt"
	"math"

	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/lint"
)

// LintTechnology validates a Technology's electrical and timing
// parameters before a sweep burns hours on a configuration that cannot
// produce physical results. Errors mark configurations whose simulations
// would be meaningless (non-positive capacitances, a word line that
// cannot open its access device, a precharge phase shorter than the
// bit-line RC constant); warnings mark configurations that simulate but
// with degraded margins.
// MinTempC and MaxTempC bound the junction temperatures a Technology
// may declare — the extended industrial envelope stress corners sweep.
const (
	MinTempC = -60.0
	MaxTempC = 150.0
)

func LintTechnology(t Technology) lint.Findings {
	var out lint.Findings
	add := func(sev lint.Severity, rule, format string, args ...any) {
		out = append(out, lint.Finding{
			Layer: "technology", Rule: rule, Severity: sev,
			Subject: "Technology",
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Finiteness first: NaN compares false against every bound below, so
	// without this pre-pass a NaN parameter would sail through the range
	// checks silently — exactly the hole a buggy corner derivation would
	// fall into.
	fields := []struct {
		name string
		v    float64
	}{
		{"VDD", t.VDD}, {"VPP", t.VPP}, {"VBLEQ", t.VBLEQ}, {"VRefCell", t.VRefCell},
		{"CCell", t.CCell}, {"CRefCell", t.CRefCell}, {"CWLGate", t.CWLGate},
		{"CBLPre", t.CBLPre}, {"CBLCell", t.CBLCell}, {"CBLRef", t.CBLRef},
		{"CBLSA", t.CBLSA}, {"CBLIO", t.CBLIO}, {"CIO", t.CIO},
		{"COut", t.COut}, {"CSACommon", t.CSACommon},
		{"RWire", t.RWire}, {"RWriteDriver", t.RWriteDriver},
		{"ROutSwitch", t.ROutSwitch}, {"ROff", t.ROff},
		{"TRamp", t.TRamp}, {"TPre", t.TPre}, {"TSettle", t.TSettle},
		{"TShare", t.TShare}, {"TSense", t.TSense}, {"TWrite", t.TWrite},
		{"TIO", t.TIO}, {"TClose", t.TClose}, {"DT", t.DT},
		{"WWLBoost", t.WWLBoost}, {"SAImbalance", t.SAImbalance},
		{"TempC", t.TempC},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			add(lint.Error, "tech-finite", "%s = %g; every technology parameter must be finite", f.name, f.v)
		}
	}

	// Temperature: the derivation formulas (wire TCR, mobility power
	// law) are calibrated for the industrial/military envelope; outside
	// it they extrapolate garbage (and below -273.15 °C they divide by a
	// non-physical absolute temperature).
	if t.TempC < MinTempC || t.TempC > MaxTempC {
		add(lint.Error, "tech-temperature",
			"TempC = %g °C outside the supported stress envelope [%g, %g] °C", t.TempC, MinTempC, MaxTempC)
	}

	caps := []struct {
		name string
		v    float64
	}{
		{"CCell", t.CCell}, {"CRefCell", t.CRefCell}, {"CWLGate", t.CWLGate},
		{"CBLPre", t.CBLPre}, {"CBLCell", t.CBLCell}, {"CBLRef", t.CBLRef},
		{"CBLSA", t.CBLSA}, {"CBLIO", t.CBLIO}, {"CIO", t.CIO},
		{"COut", t.COut}, {"CSACommon", t.CSACommon},
	}
	for _, c := range caps {
		if c.v <= 0 {
			add(lint.Error, "tech-capacitance", "%s = %g F; every capacitance must be positive", c.name, c.v)
		}
	}

	ress := []struct {
		name string
		v    float64
	}{
		{"RWire", t.RWire}, {"RWriteDriver", t.RWriteDriver},
		{"ROutSwitch", t.ROutSwitch}, {"ROff", t.ROff},
	}
	for _, r := range ress {
		if r.v <= 0 {
			add(lint.Error, "tech-resistance", "%s = %g Ω; every resistance must be positive", r.name, r.v)
		}
	}
	if ron := max(t.RWriteDriver, t.ROutSwitch); t.ROff > 0 && ron > 0 && t.ROff < 1e3*ron {
		add(lint.Warning, "tech-off-resistance",
			"ROff = %g Ω is under 1000× the largest on-resistance (%g Ω); open switches leak into the analysis", t.ROff, ron)
	}

	if t.VDD <= 0 {
		add(lint.Error, "tech-voltage", "VDD = %g V must be positive", t.VDD)
	}
	vt := device.DefaultNMOS().Vt0
	if t.VPP <= t.VDD {
		add(lint.Error, "tech-wordline-boost",
			"VPP = %g V does not exceed VDD = %g V; access devices drop the threshold and cells never see full rail", t.VPP, t.VDD)
	} else if t.VPP < t.VDD+vt {
		add(lint.Warning, "tech-wordline-boost",
			"VPP = %g V leaves less than the access threshold Vt0 = %g V of boost over VDD = %g V; stored 1 levels degrade", t.VPP, vt, t.VDD)
	}
	if t.VBLEQ <= 0 || t.VBLEQ >= t.VDD {
		add(lint.Error, "tech-precharge-level",
			"VBLEQ = %g V must lie strictly between 0 and VDD = %g V for charge sharing to discriminate stored data", t.VBLEQ, t.VDD)
	}
	if t.LogicThreshold() <= 0 {
		add(lint.Error, "tech-logic-threshold",
			"LogicThreshold() = %g V is not positive; every net classifies as logic 1", t.LogicThreshold())
	}
	if t.VRefCell < 0 || t.VRefCell > t.VDD {
		add(lint.Error, "tech-reference-level",
			"VRefCell = %g V must lie within [0, VDD = %g V]", t.VRefCell, t.VDD)
	}

	times := []struct {
		name string
		v    float64
	}{
		{"TRamp", t.TRamp}, {"TPre", t.TPre}, {"TSettle", t.TSettle},
		{"TShare", t.TShare}, {"TSense", t.TSense}, {"TWrite", t.TWrite},
		{"TIO", t.TIO}, {"TClose", t.TClose}, {"DT", t.DT},
	}
	for _, p := range times {
		if p.v <= 0 {
			add(lint.Error, "tech-timing", "%s = %g s; every phase duration and the timestep must be positive", p.name, p.v)
		}
	}
	if t.DT > 0 && t.TRamp > 0 && t.DT > t.TRamp {
		add(lint.Error, "tech-timestep",
			"DT = %g s exceeds the control ramp TRamp = %g s; ramps collapse to a single step and the transient is unresolved", t.DT, t.TRamp)
	}
	if t.WWLBoost <= 0 {
		add(lint.Error, "tech-layout", "WWLBoost = %g must be positive", t.WWLBoost)
	}

	// Precharge RC constant: the precharge NMOS gates are driven to VPP,
	// so the device equalizes the bit line toward VBLEQ with overdrive
	// VPP − VBLEQ − Vt0. First order, the bit line settles with
	// τ = CBL / (Kp·(W/L)·overdrive); TPre must cover ≥ 3τ or every
	// operation starts from an unequalized bit line.
	nmos := device.DefaultNMOS()
	nmos.W *= t.WWLBoost
	overdrive := t.VPP - t.VBLEQ - nmos.Vt0
	if overdrive <= 0 {
		add(lint.Error, "tech-precharge-rc",
			"VPP = %g V cannot turn on the precharge devices toward VBLEQ = %g V (overdrive %g V ≤ 0)", t.VPP, t.VBLEQ, overdrive)
	} else if t.TPre > 0 {
		gPre := nmos.Kp * (nmos.W / nmos.L) * overdrive
		if tau := t.CBLTotal() / gPre; t.TPre < 3*tau {
			add(lint.Error, "tech-precharge-rc",
				"TPre = %g s is under 3× the bit-line precharge RC constant τ = %g s; bit lines never reach VBLEQ", t.TPre, tau)
		}
	}
	if t.TWrite > 0 && t.RWriteDriver > 0 && t.CIO > 0 && t.TWrite < 3*t.RWriteDriver*t.CIO {
		add(lint.Error, "tech-write-rc",
			"TWrite = %g s is under 3× the write-driver RC constant %g s; the IO line never reaches the driven level", t.TWrite, 3*t.RWriteDriver*t.CIO)
	}
	if t.TIO > 0 && t.ROutSwitch > 0 && t.COut > 0 && t.TIO < 3*t.ROutSwitch*t.COut {
		add(lint.Error, "tech-read-rc",
			"TIO = %g s is under 3× the output-sample RC constant %g s; the output buffer never tracks the IO line", t.TIO, 3*t.ROutSwitch*t.COut)
	}

	out.Sort()
	return out
}
