package dram

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/device"
)

// set schedules a control signal to ramp from its present value to the
// target over TRamp starting at the current simulation time.
func (c *Column) set(sig string, target float64) {
	src, ok := c.ctl[sig]
	if !ok {
		panic(fmt.Sprintf("dram: unknown control signal %q", sig))
	}
	cur := c.ctlV[sig]
	if cur == target {
		return
	}
	now := c.eng.Time()
	src.SetWaveform(device.NewPWL(
		[2]float64{now, cur},
		[2]float64{now + c.Tech.TRamp, target},
	))
	c.ctlV[sig] = target
}

// run advances the transient by dur seconds.
func (c *Column) run(dur float64) error {
	steps := int(dur/c.Tech.DT + 0.5)
	if steps < 1 {
		steps = 1
	}
	return c.eng.Run(dur, steps, c.Observe)
}

// wlSignal returns the word-line control for a cell index.
func wlSignal(cell int) string {
	switch cell {
	case 0:
		return sigWL0
	case 1:
		return sigWL1
	}
	panic(fmt.Sprintf("dram: cell index %d out of range", cell))
}

// Precharge runs one precharge/equalize phase: bit lines and SA common
// nodes to VBLEQ, reference cells restored to VRefCell, everything else
// deasserted.
func (c *Column) Precharge() error {
	t := c.Tech
	c.set(sigWL0, 0)
	c.set(sigWL1, 0)
	c.set(sigDWLC, 0)
	c.set(sigDWLT, 0)
	c.set(sigSEN, 0)
	c.set(sigSENB, t.VDD)
	c.set(sigCSL, 0)
	c.set(sigREN, 0)
	c.set(sigWEN, 0)
	c.set(sigPre, t.VPP)
	c.set(sigDRef, t.VPP)
	return c.run(t.TPre)
}

// PowerUp initializes the column to its standby state: storage nodes
// discharged, reference cells at VRefCell, bit lines and SA common nodes
// at the precharge level, followed by one settling precharge phase. The
// direct state initialization stands in for the long power-up sequence a
// real part performs; the fault analysis overwrites the nodes it studies
// anyway.
func (c *Column) PowerUp() error {
	t := c.Tech
	c.set(sigSENB, t.VDD)
	c.set(sigWD, 0)
	c.set(sigWDB, t.VDD)
	c.SetNodeVoltages(0, NetCell0Store, NetCell1Store, NetOutBuf, NetIO, NetIOB)
	c.SetNodeVoltages(t.VRefCell, NetRefStore, "dts")
	c.SetNodeVoltages(t.VBLEQ,
		NetBTPre, NetBTCell, NetBTRef, NetBTSA, NetBTIO,
		NetBCPre, NetBCCell, NetBCRef, NetBCSA, NetBCIO,
		NetSAN, NetSAP)
	if err := c.Precharge(); err != nil {
		return fmt.Errorf("dram: power-up precharge: %w", err)
	}
	return nil
}

// access runs the shared activate portion of an operation: release
// precharge, raise the addressed word line and the reference word line on
// the complementary bit line, share charge, then regenerate the sense
// amplifier (which also restores the cell).
func (c *Column) access(cell int) error {
	t := c.Tech
	c.set(sigPre, 0)
	c.set(sigDRef, 0)
	if err := c.run(t.TSettle); err != nil {
		return err
	}
	c.set(wlSignal(cell), t.VPP)
	c.set(sigDWLC, t.VPP)
	if err := c.run(t.TShare); err != nil {
		return err
	}
	c.set(sigSEN, t.VDD)
	c.set(sigSENB, 0)
	return c.run(t.TSense)
}

// close wraps up an operation: word lines fall first so the cell keeps
// the bit-line value, then the SA turns off.
func (c *Column) close(cell int) error {
	t := c.Tech
	c.set(wlSignal(cell), 0)
	c.set(sigDWLC, 0)
	if err := c.run(t.TClose); err != nil {
		return err
	}
	c.set(sigSEN, 0)
	c.set(sigSENB, t.VDD)
	return c.run(t.TClose)
}

// Write performs a w0 or w1 operation to the given cell: precharge,
// activate and sense (DRAM writes are read-modify-write at the column
// level), then the write driver overpowers the sense amplifier with the
// new datum while the word line is still up.
func (c *Column) Write(cell, bit int) error {
	if bit != 0 && bit != 1 {
		panic(fmt.Sprintf("dram: write data %d out of range", bit))
	}
	t := c.Tech
	if err := c.Precharge(); err != nil {
		return err
	}
	if err := c.access(cell); err != nil {
		return err
	}
	if bit == 1 {
		c.set(sigWD, t.VDD)
		c.set(sigWDB, 0)
	} else {
		c.set(sigWD, 0)
		c.set(sigWDB, t.VDD)
	}
	c.set(sigCSL, t.VPP)
	c.set(sigWEN, t.VDD)
	if err := c.run(t.TWrite); err != nil {
		return err
	}
	c.set(sigWEN, 0)
	c.set(sigCSL, 0)
	if err := c.run(t.TSettle); err != nil {
		return err
	}
	return c.close(cell)
}

// Read performs a read operation on the given cell and returns the logic
// value captured in the output buffer.
func (c *Column) Read(cell int) (int, error) {
	t := c.Tech
	if err := c.Precharge(); err != nil {
		return 0, err
	}
	if err := c.access(cell); err != nil {
		return 0, err
	}
	c.set(sigCSL, t.VPP)
	c.set(sigREN, t.VDD)
	if err := c.run(t.TIO); err != nil {
		return 0, err
	}
	c.set(sigREN, 0)
	c.set(sigCSL, 0)
	if err := c.run(t.TSettle); err != nil {
		return 0, err
	}
	if err := c.close(cell); err != nil {
		return 0, err
	}
	return c.OutputBit(), nil
}
