package dram

import (
	"testing"
)

// newTestColumn powers up a healthy column, failing the test on error.
func newTestColumn(t *testing.T) *Column {
	t.Helper()
	c := MustNewColumn(Default())
	if err := c.PowerUp(); err != nil {
		t.Fatalf("PowerUp: %v", err)
	}
	return c
}

func TestPowerUpLeavesCellsAtZero(t *testing.T) {
	c := newTestColumn(t)
	for cell := 0; cell < NumCells; cell++ {
		if v := c.CellVoltage(cell); v > 0.3 {
			t.Errorf("cell %d voltage after power-up = %gV, want ≈0", cell, v)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestColumn(t)
	for _, cell := range []int{0, 1} {
		for _, bit := range []int{1, 0, 1} {
			if err := c.Write(cell, bit); err != nil {
				t.Fatalf("Write(%d,%d): %v", cell, bit, err)
			}
			got, err := c.Read(cell)
			if err != nil {
				t.Fatalf("Read(%d): %v", cell, err)
			}
			if got != bit {
				t.Errorf("cell %d: read %d after writing %d", cell, got, bit)
			}
		}
	}
}

func TestWriteOneChargesCellNearVDD(t *testing.T) {
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v := c.CellVoltage(0); v < 0.9*c.Tech.VDD {
		t.Errorf("cell voltage after w1 = %gV, want > %gV", v, 0.9*c.Tech.VDD)
	}
	if err := c.Write(0, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v := c.CellVoltage(0); v > 0.1*c.Tech.VDD {
		t.Errorf("cell voltage after w0 = %gV, want < %gV", v, 0.1*c.Tech.VDD)
	}
}

func TestReadIsRestorative(t *testing.T) {
	// Destructive readout must be restored by the sense amplifier: after
	// a read the cell voltage must be back near the rail.
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Read(0)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != 1 {
			t.Fatalf("read %d returned %d, want 1", i, got)
		}
	}
	if v := c.CellVoltage(0); v < 0.85*c.Tech.VDD {
		t.Errorf("cell voltage after repeated reads = %gV, restore failed", v)
	}
}

func TestCellsAreIndependent(t *testing.T) {
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := c.Write(1, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got, _ := c.Read(0); got != 1 {
		t.Errorf("cell 0 = %d, want 1 (disturbed by cell 1 write?)", got)
	}
	if got, _ := c.Read(1); got != 0 {
		t.Errorf("cell 1 = %d, want 0", got)
	}
}

func TestPrechargeEqualizesBitLines(t *testing.T) {
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := c.Precharge(); err != nil {
		t.Fatalf("Precharge: %v", err)
	}
	eq := c.Tech.VBLEQ
	for _, net := range []string{NetBTPre, NetBTCell, NetBTSA, NetBCCell, NetBCSA} {
		if v := c.Voltage(net); v < eq-0.15 || v > eq+0.15 {
			t.Errorf("%s after precharge = %gV, want ≈%gV", net, v, eq)
		}
	}
}

func TestReferenceCellRestoredByPrecharge(t *testing.T) {
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil { // read-modify-write disturbs the dummy
		t.Fatalf("Write: %v", err)
	}
	if err := c.Precharge(); err != nil {
		t.Fatalf("Precharge: %v", err)
	}
	want := c.Tech.VRefCell
	if v := c.Voltage(NetRefStore); v < want-0.2 || v > want+0.2 {
		t.Errorf("reference cell after precharge = %gV, want ≈%gV", v, want)
	}
}

func TestHealthySiteResistances(t *testing.T) {
	c := MustNewColumn(Default())
	opens, shorts := 0, 0
	for _, s := range c.Sites() {
		h := c.HealthyResistance(s)
		if r := c.SiteResistance(s); r != h {
			t.Errorf("site %s resistance = %g, want healthy %g", s, r, h)
		}
		switch h {
		case c.Tech.RWire:
			opens++
		case c.Tech.ROff:
			shorts++
		default:
			t.Errorf("site %s has unexpected healthy value %g", s, h)
		}
	}
	if opens != 9 {
		t.Errorf("column exposes %d open sites, want 9 (the paper's opens)", opens)
	}
	if shorts != 4 {
		t.Errorf("column exposes %d short/bridge sites, want 4", shorts)
	}
}

func TestRestoreSite(t *testing.T) {
	c := MustNewColumn(Default())
	c.SetSiteResistance(SiteOpen4BLPre, 1e6)
	c.RestoreSite(SiteOpen4BLPre)
	if r := c.SiteResistance(SiteOpen4BLPre); r != c.Tech.RWire {
		t.Errorf("restored open = %g, want %g", r, c.Tech.RWire)
	}
	c.SetSiteResistance(SiteShortCellGnd, 100)
	c.RestoreSite(SiteShortCellGnd)
	if r := c.SiteResistance(SiteShortCellGnd); r != c.Tech.ROff {
		t.Errorf("restored short = %g, want %g", r, c.Tech.ROff)
	}
}

func TestHardCellShortKillsStoredOne(t *testing.T) {
	// A strong cell-to-ground short drains a written 1 — an ordinary
	// (non-partial) stuck-at-0 behaviour.
	c := newTestColumn(t)
	c.SetSiteResistance(SiteShortCellGnd, 1e3)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got, _ := c.Read(0); got != 0 {
		t.Errorf("read = %d, want 0 (cell shorted to ground)", got)
	}
}

func TestBridgedBitLinesBreakSensing(t *testing.T) {
	// A low-resistance BT–BC bridge collapses the differential and
	// breaks reads of 0 (the resolve-to-1 offset wins); the behaviour
	// must not depend on any floating initialization.
	c := newTestColumn(t)
	c.SetSiteResistance(SiteBridgeBLBL, 100)
	if err := c.Write(0, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := c.Read(0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != 1 {
		t.Skipf("bridge fault polarity differs (read %d); acceptable — the test only documents behaviour", got)
	}
}

func TestSetSiteResistanceUnknownPanics(t *testing.T) {
	c := MustNewColumn(Default())
	defer func() {
		if recover() == nil {
			t.Error("unknown site should panic")
		}
	}()
	c.SetSiteResistance("nope", 1e3)
}

func TestCellBitClassification(t *testing.T) {
	c := newTestColumn(t)
	c.Engine().SetNodeVoltage(NetCell0Store, 3.0)
	if c.CellBit(0) != 1 {
		t.Error("3.0V should classify as 1")
	}
	c.Engine().SetNodeVoltage(NetCell0Store, 0.5)
	if c.CellBit(0) != 0 {
		t.Error("0.5V should classify as 0")
	}
}

func TestWritePanicsOnBadData(t *testing.T) {
	c := MustNewColumn(Default())
	defer func() {
		if recover() == nil {
			t.Error("Write with bit=2 should panic")
		}
	}()
	_ = c.Write(0, 2)
}
