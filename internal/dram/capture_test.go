package dram

import (
	"bytes"
	"strings"
	"testing"
)

func TestCaptureReadWaveforms(t *testing.T) {
	c := newTestColumn(t)
	if err := c.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rec, release, err := c.Capture(NetBTSA, NetBCSA, NetCell0Store)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	defer release()
	start := c.Engine().Time()
	if _, err := c.Read(0); err != nil {
		t.Fatalf("Read: %v", err)
	}
	bt := rec.Trace(NetBTSA)
	bc := rec.Trace(NetBCSA)
	if bt.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	// During the read the sense amplifier must split the bit lines to
	// the rails: BT high, BC low.
	if bt.Max() < 3.0 {
		t.Errorf("BT peak = %.2fV, want ≈VDD", bt.Max())
	}
	if bc.Min() > 0.4 {
		t.Errorf("BC floor = %.2fV, want ≈0", bc.Min())
	}
	// Both start near the precharge level.
	if v := bt.At(start + 1e-9); v < 1.3 || v > 2.0 {
		t.Errorf("BT during precharge = %.2fV, want ≈1.65V", v)
	}
	// The regeneration crossing exists: BT rises through 2.5 V.
	if _, ok := bt.CrossingTime(2.5, +1); !ok {
		t.Error("BT never crosses 2.5V rising — sense amp did not regenerate")
	}
}

func TestCaptureCSVExport(t *testing.T) {
	c := newTestColumn(t)
	rec, release, err := c.Capture(NetBTCell)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if err := c.Precharge(); err != nil {
		t.Fatalf("Precharge: %v", err)
	}
	release()
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "time,"+NetBTCell) {
		t.Errorf("CSV header wrong: %q", buf.String()[:30])
	}
	// Release must detach the observer: further ops add no samples.
	tr := rec.Trace(NetBTCell)
	if tr == nil {
		t.Fatal("recorder lost its captured trace")
	}
	n := tr.Len()
	if err := c.Precharge(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Error("recorder still sampling after release")
	}
}

func TestCaptureValidation(t *testing.T) {
	c := MustNewColumn(Default())
	if _, _, err := c.Capture(); err == nil {
		t.Error("Capture with no nets must error")
	}
	_, _, err := c.Capture("nope")
	if err == nil {
		t.Error("Capture of an unknown net must error")
	} else if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error should name the unknown net: %v", err)
	}
	// A failed Capture must not leave a half-installed observer behind.
	if c.Observe != nil {
		t.Error("failed Capture installed an Observe hook")
	}
}
