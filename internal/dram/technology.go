// Package dram models the embedded-DRAM cell-array column of Figure 2 in
// the paper at the electrical level: 1T1C memory cells, reference (dummy)
// cells, precharge/equalize devices, a cross-coupled sense amplifier,
// column select, write driver and read output buffer — all simulated with
// the transient engine in internal/spice.
//
// The netlist exposes named defect sites (the paper's Opens 1–9) as
// series resistors whose value can be swept, and named floating-voltage
// groups (bit line, cell node, reference cell, word line, output buffer)
// that the fault analysis initializes to the swept voltage U.
package dram

// Technology collects the electrical and timing parameters of the
// simulated 0.35 µm-class column. Values are calibrated so that the
// fault-region thresholds land on the axes the paper publishes (see
// DESIGN.md §6); the region *shapes* are emergent.
type Technology struct {
	// VDD is the supply voltage.
	VDD float64
	// VPP is the boosted word-line high level (> VDD + Vt so cells see
	// full rail).
	VPP float64
	// VBLEQ is the bit-line precharge/equalize level.
	VBLEQ float64
	// VRefCell is the voltage restored into the reference (dummy) cells
	// during precharge.
	VRefCell float64

	// CCell is the cell storage capacitance.
	CCell float64
	// CRefCell is the reference-cell storage capacitance.
	CRefCell float64
	// CWLGate is the word-line gate capacitance seen past an Open 9.
	CWLGate float64
	// Bit-line segment capacitances (precharge stub, cell region,
	// reference region, sense-amp region, column-select region).
	CBLPre, CBLCell, CBLRef, CBLSA, CBLIO float64
	// CIO is the IO line capacitance, COut the output-buffer hold cap.
	CIO, COut float64
	// CSACommon is the parasitic on the SA common source nodes.
	CSACommon float64

	// RWire is the healthy (defect-free) value of the defect-site series
	// resistors.
	RWire float64
	// RWriteDriver is the on-resistance of the write driver switch.
	RWriteDriver float64
	// ROutSwitch is the on-resistance of the output-buffer sample switch.
	ROutSwitch float64
	// ROff is the off-resistance used by ideal switches.
	ROff float64

	// Timing of one operation's phases, in seconds.
	TRamp    float64 // control-signal ramp time
	TPre     float64 // precharge/equalize phase
	TSettle  float64 // dead time after precharge release
	TShare   float64 // charge-sharing window after WL rise
	TSense   float64 // sense-amp regeneration window
	TWrite   float64 // write-driver drive window
	TIO      float64 // read forwarding window to the output buffer
	TClose   float64 // wrap-up after WL falls
	DT       float64 // transient timestep
	WWLBoost float64 // multiplier on access-device width (layout knob)

	// SAImbalance is the relative width mismatch applied to the sense
	// amplifier so that a zero-differential (no-signal) input resolves
	// deterministically to logic 1 — the polarity the paper's DRAM
	// exhibits (Table 1: reads through high-impedance opens return 1,
	// e.g. RDF0 on Open 1). Physically this stands in for the systematic
	// offset of the authors' SA design; a few percent of width is well
	// inside real device mismatch.
	SAImbalance float64

	// TempC is the junction temperature in degrees Celsius the
	// parameter set is calibrated at. The field itself drives no
	// simulation directly — temperature enters through the scaled
	// resistances and device widths a stress-corner derivation applies —
	// but recording it here makes every derived corner's Technology
	// self-describing and keeps two corners that differ only in
	// temperature from ever sharing a model fingerprint
	// (TechnologyFingerprint renders every field).
	TempC float64
}

// Default returns the calibrated technology used across the repository.
func Default() Technology {
	return Technology{
		VDD:      3.3,
		VPP:      4.6,
		VBLEQ:    1.65,
		VRefCell: 1.65,

		CCell:    30e-15,
		CRefCell: 30e-15,
		CWLGate:  6e-15,
		CBLPre:   20e-15,
		CBLCell:  130e-15,
		CBLRef:   25e-15,
		CBLSA:    45e-15,
		CBLIO:    30e-15,
		CIO:      90e-15,
		COut:     20e-15,

		CSACommon: 12e-15,

		RWire:        1.0,
		RWriteDriver: 300,
		ROutSwitch:   500,
		ROff:         1e12,

		TRamp:    0.2e-9,
		TPre:     3e-9,
		TSettle:  0.3e-9,
		TShare:   2e-9,
		TSense:   3e-9,
		TWrite:   3e-9,
		TIO:      2e-9,
		TClose:   1e-9,
		DT:       0.05e-9,
		WWLBoost: 1,

		SAImbalance: 0.08,

		TempC: 27,
	}
}

// CBLTotal returns the total single bit-line capacitance.
func (t Technology) CBLTotal() float64 {
	return t.CBLPre + t.CBLCell + t.CBLRef + t.CBLSA + t.CBLIO
}

// TransferRatio returns the cell-to-bit-line charge transfer ratio
// Cc/(Cc+Cbl), the first-order read signal strength.
func (t Technology) TransferRatio() float64 {
	return t.CCell / (t.CCell + t.CBLTotal())
}

// LogicThreshold is the voltage boundary between logic 0 and 1 used when
// classifying stored states and output levels. It sits slightly below the
// precharge level: with the sense amplifier's resolve-to-1 polarity, a
// cell floating at or near VBLEQ functionally reads as 1, so the
// classification of F must follow the read trip point rather than VDD/2
// exactly.
func (t Technology) LogicThreshold() float64 { return t.VBLEQ - 0.15 }
