package dram

import (
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/netlint"
)

// LintModel returns the phase-aware netlint model of the column: which
// control nets are high in each operating phase of the controller's
// schedule, which elements form the regenerating sense-amplifier latch,
// and which phases are responsible for establishing each interesting
// net's state. netlint uses it to predict, per injected open, the set of
// floating lines — the static counterpart of the paper's Table 1.
//
// The phases mirror internal/dram/controller.go:
//
//   - precharge: pre and dref high (bit lines, SA commons and both dummy
//     cells restored), everything else low.
//   - sense0/sense1: word line 0/1 and the BC-side dummy word line high,
//     SA enabled (sen high, senb low). Cell state is restored through the
//     latch.
//   - write0/write1: like sense, plus column select and the write
//     enable, so the write driver reaches the cell through IO.
//   - readout: column select and read enable high while the word line is
//     still up; the output buffer samples IO.
//
// Roles encode what "floating" means per net class: bit lines, SA
// commons and the BT-side dummy cell are established by precharge;
// storage cells by their write and sense phases; the BC-side reference
// cell by the sensing that uses it; the word-line gate by every phase
// (its driver must always reach it); the output buffer and IO by
// readout.
func LintModel() netlint.Model { return LintModelFor(Default()) }

// LintModelFor is LintModel parameterized by the technology, so the
// weak-merge divider analysis can use the actual rail voltages and a
// channel on-resistance consistent with the level-1 device model: a
// boosted gate at VPP over an NMOS pass device sitting near VBLEQ gives
// Ron ≈ 1 / (β·(Vgs − Vt)), the triode small-signal conductance the
// transient engine exhibits for the precharge and access devices.
func LintModelFor(t Technology) netlint.Model {
	// Control nets left out of a phase's Levels are unknown and gate
	// nothing on; only senb needs an explicit level everywhere because it
	// gates a PMOS (active-low), where unknown and low differ.
	sense := func(wl string) map[string]bool {
		return map[string]bool{wl: true, sigDWLC: true, sigSEN: true, sigSENB: false}
	}
	write := func(wl string) map[string]bool {
		m := sense(wl)
		m[sigCSL] = true
		m[sigWEN] = true
		return m
	}
	readout := sense("wl0d")
	readout[sigCSL] = true
	readout[sigREN] = true

	allPhases := []string{"precharge", "sense0", "sense1", "write0", "write1", "readout"}
	roles := map[string][]string{
		NetCell0Store: {"write0", "sense0"},
		NetCell1Store: {"write1", "sense1"},
		NetRefStore:   {"sense0"},
		"dts":         {"precharge"},
		NetWL0Gate:    allPhases,
		NetOutBuf:     {"readout"},
		NetIO:         {"readout"},
	}
	for _, bl := range []string{
		NetBTPre, NetBTCell, NetBTRef, NetBTSA, NetBTIO,
		NetBCPre, NetBCCell, NetBCRef, NetBCSA, NetBCIO,
		NetSAN, NetSAP,
	} {
		roles[bl] = []string{"precharge"}
	}

	phases := []netlint.Phase{
		{Name: "precharge", Levels: map[string]bool{sigPre: true, sigDRef: true, sigSENB: true}},
		{Name: "sense0", Levels: sense("wl0d")},
		{Name: "sense1", Levels: sense(sigWL1)},
		{Name: "write0", Levels: write("wl0d")},
		{Name: "write1", Levels: write(sigWL1)},
		{Name: "readout", Levels: readout},
	}

	nmos := device.DefaultNMOS()
	onOhms := 1 / (nmos.Beta() * (t.VPP - t.VBLEQ - nmos.Vt0))

	return netlint.Model{
		Phases: phases,
		Latches: []netlint.Latch{{
			Elements: []string{"M_sn1", "M_sn2", "M_sp1", "M_sp2"},
			Requires: [][2]string{{NetSAN, "0"}, {NetSAP, "vddn"}},
			ActiveIn: []string{"sense0", "sense1", "write0", "write1", "readout"},
		}},
		Roles:      roles,
		CutoffOhms: 1e9,
		OnOhms:     onOhms,
		NetVolts: map[string]float64{
			"vddn":   t.VDD,
			"vref":   t.VRefCell,
			"vbleqS": t.VBLEQ,
		},
	}
}
