package dram

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/spice"
	"github.com/memtest/partialfaults/internal/wave"
)

// Capture attaches a waveform recorder to the column: every transient
// step appends one sample per requested net. It returns the recorder and
// a release function that detaches it. Capturing replaces any previously
// installed Observe hook.
func (c *Column) Capture(nets ...string) (*wave.Recorder, func()) {
	if len(nets) == 0 {
		panic("dram: Capture requires at least one net")
	}
	for _, n := range nets {
		if _, ok := c.ckt.NodeIndex(n); !ok {
			panic(fmt.Sprintf("dram: unknown net %q", n))
		}
	}
	rec := wave.NewRecorder(nets...)
	vals := make([]float64, len(nets))
	c.Observe = func(e *spice.Engine) {
		for i, n := range nets {
			vals[i] = e.Voltage(n)
		}
		rec.Sample(e.Time(), vals...)
	}
	return rec, func() { c.Observe = nil }
}
