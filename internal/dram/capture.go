package dram

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/spice"
	"github.com/memtest/partialfaults/internal/wave"
)

// Capture attaches a waveform recorder to the column: every transient
// step appends one sample per requested net. It returns the recorder
// and a release function that detaches it, or an error naming the first
// unknown net — net lists arrive from command-line flags, so a typo
// must surface as a diagnostic, not a panic. Capturing replaces any
// previously installed Observe hook.
func (c *Column) Capture(nets ...string) (*wave.Recorder, func(), error) {
	if len(nets) == 0 {
		return nil, nil, fmt.Errorf("dram: Capture requires at least one net")
	}
	for _, n := range nets {
		if _, ok := c.ckt.NodeIndex(n); !ok {
			return nil, nil, fmt.Errorf("dram: unknown net %q", n)
		}
	}
	rec := wave.NewRecorder(nets...)
	vals := make([]float64, len(nets))
	c.Observe = func(e *spice.Engine) {
		for i, n := range nets {
			vals[i] = e.Voltage(n)
		}
		rec.Sample(e.Time(), vals...)
	}
	return rec, func() { c.Observe = nil }, nil
}
