package dram

import (
	"testing"

	"github.com/memtest/partialfaults/internal/lint"
)

// The calibrated default technology must lint clean — it backs every
// golden table in the repository.
func TestLintTechnologyDefaultClean(t *testing.T) {
	if out := LintTechnology(Default()); out.Count(lint.Warning) > 0 {
		t.Fatalf("default technology has findings:\n%s", out.Summary())
	}
}

func TestLintTechnologyCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Technology)
		rule   string
	}{
		{"negative cell cap", func(t *Technology) { t.CCell = -1e-15 }, "tech-capacitance"},
		{"zero bitline cap", func(t *Technology) { t.CBLCell = 0 }, "tech-capacitance"},
		{"negative driver resistance", func(t *Technology) { t.RWriteDriver = -300 }, "tech-resistance"},
		{"leaky off switch", func(t *Technology) { t.ROff = 1e4 }, "tech-off-resistance"},
		{"no supply", func(t *Technology) { t.VDD = 0 }, "tech-voltage"},
		{"unboosted word line", func(t *Technology) { t.VPP = t.VDD }, "tech-wordline-boost"},
		{"thin word-line boost", func(t *Technology) { t.VPP = t.VDD + 0.1 }, "tech-wordline-boost"},
		{"precharge above rail", func(t *Technology) { t.VBLEQ = t.VDD + 0.1 }, "tech-precharge-level"},
		{"reference above rail", func(t *Technology) { t.VRefCell = t.VDD + 0.1 }, "tech-reference-level"},
		{"zero precharge phase", func(t *Technology) { t.TPre = 0 }, "tech-timing"},
		{"negative timestep", func(t *Technology) { t.DT = -1e-12 }, "tech-timing"},
		{"timestep past ramp", func(t *Technology) { t.DT = 1e-9 }, "tech-timestep"},
		{"zero access width", func(t *Technology) { t.WWLBoost = 0 }, "tech-layout"},
		{"precharge shorter than RC", func(t *Technology) { t.TPre = 1e-13 }, "tech-precharge-rc"},
		{"write shorter than RC", func(t *Technology) { t.TWrite = 1e-13 }, "tech-write-rc"},
		{"read shorter than RC", func(t *Technology) { t.TIO = 1e-13 }, "tech-read-rc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tech := Default()
			tc.mutate(&tech)
			out := LintTechnology(tech)
			if len(out.ByRule(tc.rule)) == 0 {
				t.Fatalf("expected a %s finding, got:\n%s", tc.rule, out.Summary())
			}
		})
	}
}
