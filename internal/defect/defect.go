// Package defect describes the memory defects the paper analyzes — the
// nine resistive opens of Figure 2 — plus the shorts and bridges of the
// standard defect taxonomy, and maps each open to its netlist injection
// site and the floating-voltage groups its fault analysis must
// initialize (the paper's Section 2 rules).
package defect

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/dram"
)

// Class is the defect class of the standard taxonomy. The paper's
// analysis is limited to opens: shorts and bridges do not restrict
// current flow and therefore do not create floating voltages or partial
// faults (Section 2).
type Class int

// Defect classes.
const (
	ClassOpen Class = iota
	ClassShort
	ClassBridge
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassOpen:
		return "open"
	case ClassShort:
		return "short"
	case ClassBridge:
		return "bridge"
	}
	return "unknown"
}

// FloatVar identifies which floating voltage a fault analysis sweeps.
// These are the "Initialized volt." entries of Table 1.
type FloatVar string

// The floating-voltage variables of the paper.
const (
	FloatMemoryCell FloatVar = "Memory cell"
	FloatBitLine    FloatVar = "Bit line"
	FloatRefCell    FloatVar = "Reference cell"
	FloatWordLine   FloatVar = "Word line"
	FloatOutBuffer  FloatVar = "Output buffer"
)

// FloatGroup is a named set of nets initialized together to the swept
// voltage U.
type FloatGroup struct {
	// Var labels the group with the paper's floating-voltage name.
	Var FloatVar
	// Nets are the dram column nets the analysis overwrites.
	Nets []string
}

// Open is one of the paper's nine open-defect locations.
type Open struct {
	// ID is the paper's open number, 1–9.
	ID int
	// Site is the dram defect-site resistor this open injects into.
	Site string
	// Description repeats the paper's Section 2 characterization.
	Description string
	// Floats are the floating-voltage groups the analysis must sweep for
	// this open, primary group first.
	Floats []FloatGroup
	// Simulated mirrors the paper's Section 5: Open 2 was described but
	// not electrically simulated there.
	Simulated bool
	// Extra lists additional defect sites injected together with Site —
	// the multi-defect scenarios of the merge catalog. An entry with
	// Ohms == 0 follows the sweep's R_def like the primary site; a
	// non-zero entry is injected at that fixed resistance.
	Extra []SiteOhms
}

// SiteOhms is one additional defect-site injection of a multi-defect
// scenario.
type SiteOhms struct {
	// Site is the dram defect-site resistor.
	Site string
	// Ohms is the injected resistance; 0 means "use the sweep's R_def".
	Ohms float64
}

// Name returns the conventional name, e.g. "Open 4".
func (o Open) Name() string { return fmt.Sprintf("Open %d", o.ID) }

// Float returns the group for a floating variable, if the open has one.
func (o Open) Float(v FloatVar) (FloatGroup, bool) {
	for _, g := range o.Floats {
		if g.Var == v {
			return g, true
		}
	}
	return FloatGroup{}, false
}

// btDownstream lists the BT nets at and beyond each segment.
var (
	btAll  = []string{dram.NetBTPre, dram.NetBTCell, dram.NetBTRef, dram.NetBTSA, dram.NetBTIO}
	btCell = []string{dram.NetBTCell, dram.NetBTRef, dram.NetBTSA, dram.NetBTIO}
	btRef  = []string{dram.NetBTRef, dram.NetBTSA, dram.NetBTIO}
	btSA   = []string{dram.NetBTSA, dram.NetBTIO}
	btIO   = []string{dram.NetBTIO}
)

// Opens returns the paper's nine opens in order. The float groups encode
// Section 2's per-open analysis rules.
func Opens() []Open {
	return []Open{
		{
			ID: 1, Site: dram.SiteOpen1Cell, Simulated: true,
			Description: "in the memory cell; floating stored voltage prevents setting a strong 1 or 0",
			Floats: []FloatGroup{
				{Var: FloatMemoryCell, Nets: []string{dram.NetCell0Store}},
			},
		},
		{
			ID: 2, Site: dram.SiteOpen2RefCell, Simulated: false,
			Description: "in the reference cell; improper setting of the reference voltage",
			Floats: []FloatGroup{
				{Var: FloatRefCell, Nets: []string{dram.NetRefStore}},
			},
		},
		{
			ID: 3, Site: dram.SiteOpen3Pre, Simulated: true,
			Description: "in the precharge circuits; prevents precharging of BT, floating BL voltage",
			Floats: []FloatGroup{
				{Var: FloatBitLine, Nets: btAll},
			},
		},
		{
			ID: 4, Site: dram.SiteOpen4BLPre, Simulated: true,
			Description: "on the bit line between precharge devices and cells (Figure 1); floating BL voltage",
			Floats: []FloatGroup{
				{Var: FloatBitLine, Nets: btCell},
			},
		},
		{
			ID: 5, Site: dram.SiteOpen5BLCell, Simulated: true,
			Description: "on the bit line between cells and reference cells; floating BL and cell voltages",
			Floats: []FloatGroup{
				{Var: FloatBitLine, Nets: btRef},
				{Var: FloatMemoryCell, Nets: []string{dram.NetCell0Store}},
			},
		},
		{
			ID: 6, Site: dram.SiteOpen6BLRef, Simulated: true,
			Description: "on the bit line between reference cells and sense amplifier; floating BL, cell and reference voltages",
			Floats: []FloatGroup{
				{Var: FloatBitLine, Nets: btSA},
				{Var: FloatMemoryCell, Nets: []string{dram.NetCell0Store}},
			},
		},
		{
			ID: 7, Site: dram.SiteOpen7SA, Simulated: true,
			Description: "in the sense amplifier; improper sensing, floating reference and output-buffer state",
			Floats: []FloatGroup{
				{Var: FloatRefCell, Nets: []string{dram.NetRefStore}},
				{Var: FloatOutBuffer, Nets: []string{dram.NetOutBuf, dram.NetIO}},
			},
		},
		{
			ID: 8, Site: dram.SiteOpen8BLIO, Simulated: true,
			Description: "on the bit line between sense amplifier and column select; floating BL and output-buffer state",
			Floats: []FloatGroup{
				{Var: FloatOutBuffer, Nets: []string{dram.NetOutBuf, dram.NetIO}},
				{Var: FloatBitLine, Nets: btIO},
			},
		},
		{
			ID: 9, Site: dram.SiteOpen9WL, Simulated: true,
			Description: "on the word line between driver and access gate; floating WL and cell voltages",
			Floats: []FloatGroup{
				{Var: FloatWordLine, Nets: []string{dram.NetWL0Gate}},
			},
		},
	}
}

// ByID returns the open with the given paper number.
func ByID(id int) (Open, bool) {
	for _, o := range Opens() {
		if o.ID == id {
			return o, true
		}
	}
	return Open{}, false
}

// SimulatedOpens returns the opens the paper's Section 5 analysis (and
// ours) sweeps electrically.
func SimulatedOpens() []Open {
	var out []Open
	for _, o := range Opens() {
		if o.Simulated {
			out = append(out, o)
		}
	}
	return out
}

// Complementary describes the complementary-defect relation of
// [Al-Ars00]: the same open on the complementary bit line (or with
// complementary data), whose faulty behaviour is the data complement of
// the simulated one. The analysis derives Com. FFM rows from it without a
// second simulation.
func Complementary(o Open) string {
	return fmt.Sprintf("%s on the complementary bit line (behaviour = data complement)", o.Name())
}
