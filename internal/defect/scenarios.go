package defect

import "github.com/memtest/partialfaults/internal/dram"

// This file extends the short/bridge catalog beyond single ideal
// defects: multi-defect scenarios (several simultaneous shorts/bridges,
// contracted together by the static prover) and weak merges (resistive
// bridges below the conductive cutoff, analyzed as voltage dividers).
// Every entry DECLARES its expected static verdicts; the analysis
// layer's Preflight cross-check and the differential equivalence test
// hold the catalog, the netlist, the static prover and the transient
// engine bit-for-bit against each other.

// WeakCheck nails one weak merge's divider prediction to the transient
// engine: initialize the victim cell to InitBit, let the controller
// idle (precharge) SettleIdles times so the divider reaches DC, then
// the named net must sit within TolVolts of the statically predicted
// loaded voltage for Phase.
type WeakCheck struct {
	// Net is the dram net whose settled voltage is measured.
	Net string
	// Phase names the static prediction phase the measurement mirrors.
	Phase string
	// InitBit is the victim-cell data written before settling.
	InitBit int
	// SettleIdles is how many idle (precharge) cycles to run; each is
	// TPre long, so 3 cycles ≈ 9 ns ≫ the divider time constants.
	SettleIdles int
	// TolVolts is the allowed |measured − predicted| difference. The
	// static model is a logic-level abstraction (one representative
	// channel on-resistance), so the band is generous but still tight
	// enough to tell the divider midpoint from either rail.
	TolVolts float64
}

// WeakExpect declares the expected divider analysis of one weak merge.
type WeakExpect struct {
	// Site is the defect-site resistor analyzed as a weak merge.
	Site string
	// Verdicts maps phase name to the expected verdict string
	// (netlint.ClassVerdict.String()).
	Verdicts map[string]string
	// Check optionally pins the divider voltage electrically.
	Check *WeakCheck
}

// MergeScenario is one multi-defect and/or weak-merge catalog entry.
type MergeScenario struct {
	// Name identifies the scenario in reports and test output.
	Name string
	// Description characterizes the combined defect.
	Description string
	// Sites are the injected defect sites; the first is the primary
	// (its Ohms == 0 means "swept R_def", a fixed value otherwise).
	Sites []SiteOhms
	// Probe is the line-voltage group swept to demonstrate that the
	// observed behaviour does not depend on an initialization — the
	// Section 2 negative result must survive defect co-occurrence.
	Probe FloatGroup
	// Classes maps each expected hard-merged class name
	// (circuit.MergeName form) to its per-phase verdict strings.
	Classes map[string]map[string]string
	// Weak lists the expected weak-merge analyses.
	Weak []WeakExpect
}

// AsOpenDescriptor adapts the scenario to the Open shape the sweep
// machinery consumes: primary site plus the remaining sites as Extra.
func (m MergeScenario) AsOpenDescriptor() Open {
	o := Open{
		ID:          0,
		Site:        m.Sites[0].Site,
		Description: m.Description,
		Floats:      []FloatGroup{m.Probe},
		Simulated:   true,
	}
	o.Extra = append(o.Extra, m.Sites[1:]...)
	return o
}

// MergeScenarios returns the multi-defect and weak-merge catalog.
//
// The hard multi-defect entries exercise transitive contraction: two
// defects whose classes coalesce into one three-net class. The weak
// entries pick resistances where the divider physics is interesting —
// a retention-killing cell leak, a bridge strong enough to fight the
// precharge device (the one weak-contested phase in the catalog), a
// symmetric bit-line bridge, and a bridge so weak it matters only for
// the accessed cell.
func MergeScenarios() []MergeScenario {
	blProbe := FloatGroup{Var: FloatBitLine, Nets: []string{dram.NetBTCell}}
	allPhases := func(verdict string) map[string]string {
		return map[string]string{
			"precharge": verdict, "sense0": verdict, "sense1": verdict,
			"write0": verdict, "write1": verdict, "readout": verdict,
		}
	}
	return []MergeScenario{
		{
			Name:        "double.cell",
			Description: "victim cell shorted to ground AND bridged to the neighbouring cell: both storage nodes join the ground class",
			Sites: []SiteOhms{
				{Site: dram.SiteShortCellGnd},
				{Site: dram.SiteBridgeCells},
			},
			Probe: blProbe,
			Classes: map[string]map[string]string{
				"0=c0s=c1s": {
					"precharge": "stuck",
					"sense0":    "contested", "sense1": "contested",
					"write0": "contested", "write1": "contested",
					"readout": "contested",
				},
			},
		},
		{
			Name:        "double.bl",
			Description: "bit line shorted to VDD AND bridged to its complement: a transitive rail class spanning both bit lines",
			Sites: []SiteOhms{
				{Site: dram.SiteShortBLVdd},
				{Site: dram.SiteBridgeBLBL},
			},
			Probe: blProbe,
			Classes: map[string]map[string]string{
				"bcC=btC=vddn": allPhases("contested"),
			},
		},
		{
			Name:        "weak.cell.gnd",
			Description: "50 kΩ leak from the victim storage node to ground: a retention divider the cell always loses when unaccessed",
			Sites:       []SiteOhms{{Site: dram.SiteShortCellGnd, Ohms: 5e4}},
			Probe:       blProbe,
			Weak: []WeakExpect{{
				Site:     dram.SiteShortCellGnd,
				Verdicts: allPhases("weak-driven"),
				Check: &WeakCheck{
					Net: dram.NetCell0Store, Phase: "precharge",
					InitBit: 1, SettleIdles: 3, TolVolts: 0.25,
				},
			}},
		},
		{
			Name:        "weak.bl.vdd",
			Description: "2 kΩ short from the bit line to VDD: comparable to the precharge device's on-resistance, a genuine divider fight during precharge",
			Sites:       []SiteOhms{{Site: dram.SiteShortBLVdd, Ohms: 2e3}},
			Probe:       blProbe,
			Weak: []WeakExpect{{
				Site: dram.SiteShortBLVdd,
				Verdicts: map[string]string{
					"precharge": "weak-contested",
					"sense0":    "weak-driven", "sense1": "weak-driven",
					"write0": "weak-driven", "write1": "weak-driven",
					"readout": "weak-driven",
				},
				Check: &WeakCheck{
					Net: dram.NetBTCell, Phase: "precharge",
					InitBit: 0, SettleIdles: 2, TolVolts: 0.3,
				},
			}},
		},
		{
			Name:        "weak.bl.bl",
			Description: "3 kΩ bridge between the true and complementary bit lines: both sides precharge to the same equalize level, so the bridge carries no fight at rest",
			Sites:       []SiteOhms{{Site: dram.SiteBridgeBLBL, Ohms: 3e3}},
			Probe:       blProbe,
			Weak: []WeakExpect{{
				Site:     dram.SiteBridgeBLBL,
				Verdicts: allPhases("weak-driven"),
				Check: &WeakCheck{
					Net: dram.NetBTCell, Phase: "precharge",
					InitBit: 0, SettleIdles: 2, TolVolts: 0.2,
				},
			}},
		},
		{
			Name:        "weak.cell.cell",
			Description: "1 MΩ bridge between the victim and the neighbouring cell: isolated at rest, a one-sided divider whenever either word line opens",
			Sites:       []SiteOhms{{Site: dram.SiteBridgeCells, Ohms: 1e6}},
			Probe:       blProbe,
			Weak: []WeakExpect{{
				Site: dram.SiteBridgeCells,
				Verdicts: map[string]string{
					"precharge": "isolated",
					"sense0":    "weak-driven", "sense1": "weak-driven",
					"write0": "weak-driven", "write1": "weak-driven",
					"readout": "weak-driven",
				},
			}},
		},
	}
}
