package defect

import (
	"testing"

	"github.com/memtest/partialfaults/internal/dram"
)

func TestOpensCoverAllNineSites(t *testing.T) {
	opens := Opens()
	if len(opens) != 9 {
		t.Fatalf("Opens() returned %d opens, want 9", len(opens))
	}
	col := dram.MustNewColumn(dram.Default())
	sites := map[string]bool{}
	for _, s := range col.Sites() {
		sites[s] = true
	}
	seen := map[string]bool{}
	for i, o := range opens {
		if o.ID != i+1 {
			t.Errorf("open %d has ID %d", i, o.ID)
		}
		if !sites[o.Site] {
			t.Errorf("Open %d site %q does not exist in the column", o.ID, o.Site)
		}
		if seen[o.Site] {
			t.Errorf("Open %d reuses site %q", o.ID, o.Site)
		}
		seen[o.Site] = true
		if len(o.Floats) == 0 {
			t.Errorf("Open %d has no floating-voltage groups", o.ID)
		}
	}
}

func TestFloatGroupNetsExist(t *testing.T) {
	col := dram.MustNewColumn(dram.Default())
	eng := col.Engine()
	for _, o := range Opens() {
		for _, g := range o.Floats {
			if len(g.Nets) == 0 {
				t.Errorf("Open %d group %s is empty", o.ID, g.Var)
			}
			for _, n := range g.Nets {
				if _, ok := eng.Circuit().NodeIndex(n); !ok {
					t.Errorf("Open %d group %s references missing net %q", o.ID, g.Var, n)
				}
			}
		}
	}
}

func TestPaperFloatAssignments(t *testing.T) {
	// Section 5's simulated floating-voltage list.
	expect := map[int][]FloatVar{
		1: {FloatMemoryCell},
		2: {FloatRefCell},
		3: {FloatBitLine},
		4: {FloatBitLine},
		5: {FloatBitLine, FloatMemoryCell},
		6: {FloatBitLine, FloatMemoryCell},
		7: {FloatRefCell, FloatOutBuffer},
		8: {FloatOutBuffer, FloatBitLine},
		9: {FloatWordLine},
	}
	for id, vars := range expect {
		o, ok := ByID(id)
		if !ok {
			t.Fatalf("ByID(%d) missing", id)
		}
		for _, v := range vars {
			if _, ok := o.Float(v); !ok {
				t.Errorf("Open %d lacks float var %s", id, v)
			}
		}
	}
}

func TestSimulatedOpensExcludesOpen2(t *testing.T) {
	// The paper's Section 5: "Open 2 in reference cell: not simulated".
	sim := SimulatedOpens()
	if len(sim) != 8 {
		t.Fatalf("SimulatedOpens() = %d opens, want 8", len(sim))
	}
	for _, o := range sim {
		if o.ID == 2 {
			t.Error("Open 2 must not be in the simulated set")
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID(10); ok {
		t.Error("ByID(10) should not exist")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassOpen.String() != "open" || ClassShort.String() != "short" || ClassBridge.String() != "bridge" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "unknown" {
		t.Error("unknown class name wrong")
	}
}

func TestComplementaryDescription(t *testing.T) {
	o, _ := ByID(4)
	if Complementary(o) == "" {
		t.Error("complementary description empty")
	}
}

func TestOpenName(t *testing.T) {
	o, _ := ByID(7)
	if o.Name() != "Open 7" {
		t.Errorf("Name = %q", o.Name())
	}
}
