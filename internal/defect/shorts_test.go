package defect

import (
	"testing"

	"github.com/memtest/partialfaults/internal/dram"
)

// TestShortBridgeCatalogCoversEverySiteOnce pins the catalog to the
// netlist: every short/bridge site the column declares appears exactly
// once in ShortsAndBridges(), and the catalog names no site the column
// does not have. A drift in either direction would silently shrink the
// negative-result cross-check's coverage.
func TestShortBridgeCatalogCoversEverySiteOnce(t *testing.T) {
	wantSites := []string{
		dram.SiteShortCellGnd,
		dram.SiteShortBLVdd,
		dram.SiteBridgeBLBL,
		dram.SiteBridgeCells,
	}
	count := map[string]int{}
	for _, sb := range ShortsAndBridges() {
		count[sb.Site]++
	}
	for _, site := range wantSites {
		if count[site] != 1 {
			t.Errorf("site %q appears %d times in ShortsAndBridges(), want exactly 1", site, count[site])
		}
		delete(count, site)
	}
	for site, n := range count {
		t.Errorf("catalog names site %q (%d times) that the column does not declare", site, n)
	}
}

// TestShortBridgeCatalogShape checks the per-entry invariants the
// analysis relies on: a short merges a signal net with a supply, a
// bridge merges two signal nets, every entry sweeps a line probe, and
// the AsOpenDescriptor adapter carries the simulation marker with the
// non-Figure-2 ID of 0.
func TestShortBridgeCatalogShape(t *testing.T) {
	supplies := map[string]bool{"0": true, "vddn": true, "vref": true, "vbleqS": true}
	for _, sb := range ShortsAndBridges() {
		if sb.Merges[0] == "" || sb.Merges[1] == "" || sb.Merges[0] == sb.Merges[1] {
			t.Errorf("%s: malformed Merges %v", sb.Site, sb.Merges)
		}
		nSupply := 0
		for _, net := range sb.Merges {
			if supplies[net] {
				nSupply++
			}
		}
		switch sb.Class {
		case ClassShort:
			if nSupply != 1 {
				t.Errorf("%s: a short must merge exactly one supply net, Merges %v has %d", sb.Site, sb.Merges, nSupply)
			}
		case ClassBridge:
			if nSupply != 0 {
				t.Errorf("%s: a bridge must merge signal nets only, Merges %v has %d supplies", sb.Site, sb.Merges, nSupply)
			}
		default:
			t.Errorf("%s: unexpected class %v", sb.Site, sb.Class)
		}
		if len(sb.Probe.Nets) == 0 {
			t.Errorf("%s: no probe nets", sb.Site)
		}
		od := sb.AsOpenDescriptor()
		if od.ID != 0 || !od.Simulated || od.Site != sb.Site {
			t.Errorf("%s: AsOpenDescriptor = %+v", sb.Site, od)
		}
	}
}
