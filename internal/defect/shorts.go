package defect

import "github.com/memtest/partialfaults/internal/dram"

// ShortOrBridge describes a short or bridge defect — the two defect
// classes the paper's Section 2 excludes from partial-fault analysis:
// "Shorts and bridges are not expected to result in partial faults since
// they do not restrict current flow and do not result in floating
// voltages." The analysis layer uses these to reproduce that negative
// result (BenchmarkShortsBridgesNoPartialFaults).
type ShortOrBridge struct {
	// Class is ClassShort (to a supply) or ClassBridge (between signal
	// lines).
	Class Class
	// Site is the dram defect-site resistor. Injection LOWERS the
	// resistance (healthy = absent = ROff).
	Site string
	// Description characterizes the defect.
	Description string
	// Probe is the line-voltage group the analysis sweeps to demonstrate
	// that the observed behaviour does not depend on an initialization.
	// It is always a *line* (bit line) rather than a storage node: a
	// storage node holds whatever it is set to by design, so sweeping it
	// tests retention, not floating-line normalization.
	Probe FloatGroup
	// Merges declares the two nets the defect electrically identifies —
	// a signal net and a supply for a short, two signal nets for a
	// bridge. The static net-merge prover (netlint.PredictMerges) is
	// cross-checked against this declaration, keeping the catalog and
	// the netlist machine-verified against each other.
	Merges [2]string
}

// Name returns a display name.
func (s ShortOrBridge) Name() string {
	return s.Class.String() + " " + s.Site
}

// ShortsAndBridges returns the short/bridge catalog of the column model.
func ShortsAndBridges() []ShortOrBridge {
	blProbe := FloatGroup{Var: FloatBitLine, Nets: []string{dram.NetBTCell}}
	return []ShortOrBridge{
		{
			Class: ClassShort, Site: dram.SiteShortCellGnd,
			Description: "victim storage node shorted to ground",
			Probe:       blProbe,
			Merges:      [2]string{dram.NetCell0Store, "0"},
		},
		{
			Class: ClassShort, Site: dram.SiteShortBLVdd,
			Description: "bit line shorted to VDD",
			Probe:       blProbe,
			Merges:      [2]string{dram.NetBTCell, "vddn"},
		},
		{
			Class: ClassBridge, Site: dram.SiteBridgeBLBL,
			Description: "bridge between the true and complementary bit lines",
			Probe:       blProbe,
			Merges:      [2]string{dram.NetBTCell, dram.NetBCCell},
		},
		{
			Class: ClassBridge, Site: dram.SiteBridgeCells,
			Description: "bridge between the victim and the neighbouring cell",
			Probe:       blProbe,
			Merges:      [2]string{dram.NetCell0Store, dram.NetCell1Store},
		},
	}
}

// AsOpenDescriptor adapts a short/bridge to the Open shape so the
// analysis sweep machinery (which only needs Site + Floats) can run it.
// The ID is 0, marking a non-Figure-2 defect.
func (s ShortOrBridge) AsOpenDescriptor() Open {
	return Open{
		ID:          0,
		Site:        s.Site,
		Description: s.Description,
		Floats:      []FloatGroup{s.Probe},
		Simulated:   true,
	}
}
