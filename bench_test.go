package partialfaults

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
	"github.com/memtest/partialfaults/internal/numeric"
)

// The benchmark harness regenerates every exhibit of the paper's
// evaluation. Each benchmark performs the full computation per iteration
// and reports the headline numbers as custom metrics so that the
// paper-versus-measured comparison appears directly in the bench output
// (EXPERIMENTS.md records the mapping).

// fig3Grid is the sweep resolution used for the Figure 3 planes.
func fig3Grid() (rdefs, us []float64) {
	return numeric.Logspace(1e3, 1e7, 9), numeric.Linspace(0, 3.3, 12)
}

// BenchmarkFig3aBitLineOpenPlane regenerates Figure 3(a): Open 4 under
// S = 1r1. Metrics: the U ceiling below which RDF1 appears (paper: ~2 V)
// and the fraction of the plane showing the fault.
func BenchmarkFig3aBitLineOpenPlane(b *testing.B) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	rdefs, us := fig3Grid()
	var uHigh float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			b.Fatal(err)
		}
		findings := analysis.IdentifyPartialFaults(plane)
		if len(findings) == 0 {
			b.Fatal("Figure 3(a) must show a partial RDF1")
		}
		for _, f := range findings {
			if f.FFM == fp.RDF1 {
				uHigh = f.UHigh
			}
		}
	}
	b.ReportMetric(uHigh, "U-ceiling-V(paper≈2)")
}

// BenchmarkTracedPlaneSweep measures the adaptive boundary-tracing
// sweep on the Figure 3(a) plane at the catalog's seed resolution
// (13×12, the service default). Metrics: the fraction of grid points
// it actually simulated and the simulation-reduction factor over a
// dense sweep of the same grid (DESIGN.md §14; the ≥5× acceptance
// target is the aggregate across all nine opens — single planes
// vary). The traced plane is bit-identical to the dense one, so the
// reduction is pure saved work.
func BenchmarkTracedPlaneSweep(b *testing.B) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	rdefs, us := numeric.Logspace(1e3, 1e7, 13), numeric.Linspace(0, 3.3, 12)
	var stats analysis.TraceStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, s, err := analysis.TracePlane(analysis.TraceConfig{SweepConfig: analysis.SweepConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
			RDefs: rdefs, Us: us,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if len(analysis.IdentifyPartialFaults(plane)) == 0 {
			b.Fatal("traced Figure 3(a) must show a partial RDF1")
		}
		stats = s
	}
	b.ReportMetric(float64(stats.Simulated())/float64(stats.Points()), "simulated-fraction")
	b.ReportMetric(stats.Reduction(), "reduction-x")
}

// BenchmarkFig3bCompletedSOSPlane regenerates Figure 3(b): Open 4 under
// S = 1v [w0BL] r1v. Metric: 1 when RDF1 is sensitized for every U at
// every faulty R_def (the paper's completion claim).
func BenchmarkFig3bCompletedSOSPlane(b *testing.B) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	rdefs, us := fig3Grid()
	completed := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			SOS:   fp.MustParse("<1v [w0BL] r1v/0/0>").S,
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			b.Fatal(err)
		}
		completed = 0
		if analysis.IsCompletedIn(plane, fp.RDF1) {
			completed = 1
		}
	}
	b.ReportMetric(completed, "U-independent(paper=1)")
}

// BenchmarkFig4aCellOpenPlane regenerates Figure 4(a): Open 1 under
// S = 0r0. Metrics: the RDF0 onset resistance at U ≈ 1.6 V and at U = 0
// (paper: 150 kΩ and 300 kΩ).
func BenchmarkFig4aCellOpenPlane(b *testing.B) {
	o, _ := defect.ByID(1)
	grp, _ := o.Float(defect.FloatMemoryCell)
	rdefs := numeric.Logspace(1e4, 1e7, 13)
	us := []float64{0, 0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.3}
	var onHigh, onLow float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			SOS:   fp.NewSOS(fp.Init0, fp.R(0)),
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			b.Fatal(err)
		}
		var ok bool
		onHigh, ok = plane.MinRDefWithFFM(fp.RDF0, 4) // U = 1.6 V
		if !ok {
			b.Fatal("RDF0 must appear at U=1.6V")
		}
		if onLow, ok = plane.MinRDefWithFFM(fp.RDF0, 0); !ok {
			onLow = rdefs[len(rdefs)-1]
		}
		if onLow <= onHigh {
			b.Fatal("the Figure 4(a) wedge inverted: onset at U=0 must exceed onset at U=1.6V")
		}
	}
	b.ReportMetric(onHigh/1e3, "onset-kΩ@1.6V(paper=150)")
	b.ReportMetric(onLow/1e3, "onset-kΩ@0V(paper=300)")
}

// BenchmarkFig4bCompletedSOSPlane regenerates Figure 4(b): Open 1 under
// S = [w1 w1 w0] r0. Metric: the flat onset resistance at which the
// read-0 failure fires for every U (paper: 150 kΩ).
func BenchmarkFig4bCompletedSOSPlane(b *testing.B) {
	o, _ := defect.ByID(1)
	grp, _ := o.Float(defect.FloatMemoryCell)
	rdefs := numeric.Logspace(1e4, 1e7, 13)
	us := numeric.Linspace(0, 3.3, 9)
	var onset float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			SOS:   fp.MustParse("<[w1 w1 w0] r0/1/1>").S,
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Above the onset row, every U must misbehave (RDF0 or, at
		// extreme resistance, its IRF0 restore-failure variant — the
		// fine structure the paper's simplified figure truncates).
		onset = 0
		for r := range rdefs {
			all := true
			for u := range us {
				pt := plane.Points[r][u]
				if !pt.Faulty {
					all = false
					break
				}
			}
			if all {
				onset = rdefs[r]
				break
			}
		}
		if onset == 0 {
			b.Fatal("completed SOS must produce a U-independent faulty band")
		}
	}
	b.ReportMetric(onset/1e3, "onset-kΩ(paper=150)")
}

// BenchmarkTable1PartialFaultInventory runs the full Section 5 pipeline
// (every simulated open, every floating group, partial-fault rule,
// completing-operation search) on a compact grid. Metrics: partial
// faults found, completions found, "Not possible" rows.
func BenchmarkTable1PartialFaultInventory(b *testing.B) {
	var found, completedN, impossible float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := analysis.BuildInventory(analysis.InventoryConfig{
			Factory: NewBehavFactory(),
			RDefs:   numeric.Logspace(1e4, 1e8, 5),
			Us:      numeric.Linspace(0, 4.6, 4),
		})
		if err != nil {
			b.Fatal(err)
		}
		found = float64(len(rows))
		completedN, impossible = 0, 0
		for _, r := range rows {
			if r.Possible {
				completedN++
			} else {
				impossible++
			}
		}
		if found == 0 || completedN == 0 || impossible == 0 {
			b.Fatal("Table 1 must contain completed and Not-possible rows")
		}
	}
	b.ReportMetric(found, "partial-faults")
	b.ReportMetric(completedN, "completed")
	b.ReportMetric(impossible, "not-possible")
}

// BenchmarkFPSpaceEnumeration regenerates the Section 4 counting
// argument: enumerate the single-cell FP space through #O = 4. Metrics:
// the 12-FP static space and the brute-force #O ≤ 4 space.
func BenchmarkFPSpaceEnumeration(b *testing.B) {
	var static, brute float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static, brute = 0, 0
		for n := 0; n <= 4; n++ {
			fps := fp.EnumerateSingleCellFPs(n)
			if len(fps) != fp.CountSingleCellFPs(n) {
				b.Fatal("enumeration disagrees with the closed form")
			}
			if n <= 1 {
				static += float64(len(fps))
			}
			brute += float64(len(fps))
		}
	}
	b.ReportMetric(static, "static-FPs(paper=12)")
	b.ReportMetric(brute, "bruteforce-FPs(#O≤4)")
}

// BenchmarkMarchPFCoverage evaluates March PF against the completed
// partial-fault catalog of Table 1 under guarantee semantics. Metrics:
// detected completable faults and (always zero) detected
// "Not possible" faults.
func BenchmarkMarchPFCoverage(b *testing.B) {
	catalog := march.PaperFaultCatalog()
	var detected, completable, impossibleDetected float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected, completable, impossibleDetected = 0, 0, 0
		for _, e := range catalog {
			det, _, _, err := march.Detects(march.MarchPF(), 4, 2, e.Make)
			if err != nil {
				b.Fatal(err)
			}
			if e.Uncompletable {
				if det {
					impossibleDetected++
				}
				continue
			}
			completable++
			if det {
				detected++
			}
		}
		if impossibleDetected != 0 {
			b.Fatal("no march test can detect the word-line partial faults")
		}
	}
	b.ReportMetric(detected, "detected")
	b.ReportMetric(completable, "completable")
	b.ReportMetric(impossibleDetected, "not-possible-detected(paper=0)")
}

// BenchmarkClassicalTestsMissPartialFaults quantifies the paper's
// motivating claim: classical tests that handle the plain FFMs miss the
// partial forms. Metric: partial faults missed by MATS+ (which detects
// the corresponding plain RDF/IRF faults).
func BenchmarkClassicalTestsMissPartialFaults(b *testing.B) {
	catalog := march.PaperFaultCatalog()
	var missed, total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		missed, total = 0, 0
		for _, e := range catalog {
			if e.Uncompletable {
				continue
			}
			total++
			det, _, _, err := march.Detects(march.MATSPlus(), 4, 2, e.Make)
			if err != nil {
				b.Fatal(err)
			}
			if !det {
				missed++
			}
		}
		if missed == 0 {
			b.Fatal("MATS+ must miss partial faults; that is the paper's premise")
		}
	}
	b.ReportMetric(missed, "missed-by-MATS+")
	b.ReportMetric(total, "completable-partials")
}

// BenchmarkShortsBridgesNoPartialFaults reproduces the paper's Section 2
// negative result: shorts and bridges do not restrict current flow, so
// no partial faults arise from them. Metrics: defects swept and partial
// findings (paper = 0).
func BenchmarkShortsBridgesNoPartialFaults(b *testing.B) {
	rdefs := numeric.Logspace(1e2, 1e6, 5)
	us := []float64{0, 1.65, 3.3}
	var defects, partials float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defects, partials = 0, 0
		for _, sb := range defect.ShortsAndBridges() {
			defects++
			o := sb.AsOpenDescriptor()
			for _, sos := range analysis.StaticSOSes() {
				plane, err := analysis.SweepPlane(analysis.SweepConfig{
					Factory: NewBehavFactory(), Open: o, Float: sb.Probe,
					SOS: sos, RDefs: rdefs, Us: us,
				})
				if err != nil {
					b.Fatal(err)
				}
				partials += float64(len(analysis.IdentifyPartialFaults(plane)))
			}
		}
		if partials != 0 {
			b.Fatal("shorts/bridges must not create partial faults (Section 2)")
		}
	}
	b.ReportMetric(defects, "defects")
	b.ReportMetric(partials, "partial-findings(paper=0)")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkBehavVsSpiceFidelity measures the cost of one full read
// operation in both engines and checks they agree on a defective probe
// point — the fidelity/speed trade the analytical model buys.
func BenchmarkBehavVsSpiceFidelity(b *testing.B) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	sos := fp.NewSOS(fp.Init1, fp.R(1))
	b.Run("behav", func(b *testing.B) {
		f := NewBehavFactory()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := analysis.RunSOS(f, o, 1e7, grp.Nets, 0, sos)
			if err != nil {
				b.Fatal(err)
			}
			if _, faulty := analysis.ClassifyOutcome(sos, out); !faulty {
				b.Fatal("probe point must be faulty")
			}
		}
	})
	b.Run("spice", func(b *testing.B) {
		f := analysis.NewSpiceFactory(dram.Default())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := analysis.RunSOS(f, o, 1e7, grp.Nets, 0, sos)
			if err != nil {
				b.Fatal(err)
			}
			if _, faulty := analysis.ClassifyOutcome(sos, out); !faulty {
				b.Fatal("probe point must be faulty")
			}
		}
	})
}

// BenchmarkDirectedVsBruteForceSearch contrasts the paper's directed
// method (static sweep + completing-operation search, Section 4) with
// the brute-force alternative of enumerating the full #O ≤ 4 FP space:
// the metric is simulations needed per approach for the Open 4 analysis.
func BenchmarkDirectedVsBruteForceSearch(b *testing.B) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	var directedSims, bruteFPs float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := analysis.SearchCompletion(analysis.CompletionConfig{
			Factory: NewBehavFactory(), Open: o, Float: grp,
			Base:  fp.MustParse("<1r1/0/0>"),
			RDefs: []float64{1e6},
			Us:    numeric.Linspace(0, 3.3, 5),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !comp.Possible {
			b.Fatal("completion must exist")
		}
		// The directed method pays: the 12 static FPs on the sweep grid
		// plus the candidates the search actually simulated.
		directedSims = 12 + float64(comp.Tried)*5
		// Brute force would sweep every FP with #O ≤ #O_completed + 1.
		bruteFPs = float64(fp.CumulativeSingleCellFPs(4))
	}
	b.ReportMetric(directedSims, "directed-sims")
	b.ReportMetric(bruteFPs, "bruteforce-FPs")
}

// BenchmarkTechnologySensitivity is a calibration ablation: it sweeps
// the precharge window (the knob that sets the Figure 3(a) R_def
// threshold, ≈ T_pre / C_BL) and reports the measured Open 4 onset for
// each setting, demonstrating which physical parameter the axis
// placement depends on.
func BenchmarkTechnologySensitivity(b *testing.B) {
	onsetFor := func(scale float64) float64 {
		p := behav.DefaultParams()
		p.Tech.TPre *= scale
		o, _ := defect.ByID(4)
		grp, _ := o.Float(defect.FloatBitLine)
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: behav.NewFactory(p), Open: o, Float: grp,
			SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
			RDefs: numeric.Logspace(1e3, 1e6, 13),
			Us:    []float64{0, 0.5},
		})
		if err != nil {
			b.Fatal(err)
		}
		onset, ok := plane.MinRDefWithFFM(fp.RDF1, 0)
		if !ok {
			b.Fatal("RDF1 must appear")
		}
		return onset
	}
	var fast, slow float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fast = onsetFor(1) // nominal 3 ns precharge
		slow = onsetFor(3) // 9 ns precharge
		if slow <= fast {
			b.Fatal("longer precharge must tolerate larger opens (higher onset)")
		}
	}
	b.ReportMetric(fast/1e3, "onset-kΩ@Tpre")
	b.ReportMetric(slow/1e3, "onset-kΩ@3×Tpre")
}

// BenchmarkSpiceOperation measures one electrical write+read pair on the
// healthy column — the substrate's unit cost.
func BenchmarkSpiceOperation(b *testing.B) {
	col := dram.MustNewColumn(dram.Default())
	if err := col.PowerUp(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := col.Write(0, i%2); err != nil {
			b.Fatal(err)
		}
		got, err := col.Read(0)
		if err != nil {
			b.Fatal(err)
		}
		if got != i%2 {
			b.Fatalf("read %d, want %d", got, i%2)
		}
	}
}

// BenchmarkBehavOperation measures the same pair on the analytical model.
func BenchmarkBehavOperation(b *testing.B) {
	m := behav.New(behav.DefaultParams())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(0, i%2); err != nil {
			b.Fatal(err)
		}
		got, err := m.Read(0)
		if err != nil {
			b.Fatal(err)
		}
		if got != i%2 {
			b.Fatalf("read %d, want %d", got, i%2)
		}
	}
}

// BenchmarkDynamicFaultCoverage evaluates the library against the twelve
// write-read dynamic (two-operation) FPs — the #O = 2 slice of the
// paper's Section 4 space. Known results: March RAW detects all 12,
// the classical static tests none.
func BenchmarkDynamicFaultCoverage(b *testing.B) {
	var raw, cminus float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, cminus = 0, 0
		for _, p := range memsim.DynamicFaultCatalog() {
			p := p
			mk := func(victim int) memsim.Fault {
				return memsim.Fault{Victim: victim, FP: p}
			}
			det, _, _, err := march.Detects(march.MarchRAW(), 4, 2, mk)
			if err != nil {
				b.Fatal(err)
			}
			if det {
				raw++
			}
			det, _, _, err = march.Detects(march.MarchCMinus(), 4, 2, mk)
			if err != nil {
				b.Fatal(err)
			}
			if det {
				cminus++
			}
		}
		if raw != 12 || cminus != 0 {
			b.Fatalf("dynamic coverage: RAW %v (want 12), C- %v (want 0)", raw, cminus)
		}
	}
	b.ReportMetric(raw, "MarchRAW-detected(known=12)")
	b.ReportMetric(cminus, "MarchC--detected(known=0)")
}

// BenchmarkTwoCellCoverage evaluates the march library against the full
// static two-cell (coupling) FP space — the #C = 2 dimension of the
// paper's Section 4 accounting. Metric: FPs detected by March SS
// (published property: all 36) and by March C- (24).
func BenchmarkTwoCellCoverage(b *testing.B) {
	var ss, cminus float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covSS, err := march.EvaluateTwoCellCoverage(march.MarchSS(), 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		covC, err := march.EvaluateTwoCellCoverage(march.MarchCMinus(), 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		ss, cminus = float64(covSS.DetectedAll), float64(covC.DetectedAll)
		if ss != 36 {
			b.Fatal("March SS must detect all 36 static two-cell FPs")
		}
	}
	b.ReportMetric(ss, "MarchSS-detected(known=36)")
	b.ReportMetric(cminus, "MarchC--detected(known=24)")
}

// BenchmarkMarchTestExecution measures running March PF over a 16-cell
// faulty array — the functional simulator's unit cost.
func BenchmarkMarchTestExecution(b *testing.B) {
	entry := march.PaperFaultCatalog()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := NewMemArray(4, 4)
		if err := arr.Inject(entry.Make(5)); err != nil {
			b.Fatal(err)
		}
		ms, err := march.MarchPF().Run(arr, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) == 0 {
			b.Fatal("March PF must catch the Open 1 completed RDF0")
		}
	}
}

// spiceSweepBench runs the electrical plane sweep that backs the
// performance-layer acceptance criterion: Open 4 under 1r1 plus the
// prefix-sharing state SOS 1, on a compact grid. The naive variant
// builds a fresh column per point; the pooled variant recycles columns
// through the reuse pool and serves shared prefixes from the replay
// tree and repeated points from the outcome memo — the configuration
// BuildInventory uses. The equivalence tests prove both produce
// bit-for-bit identical planes.
func spiceSweepBench(b *testing.B, pooled bool) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	rdefs := numeric.Logspace(1e4, 1e7, 4)
	us := numeric.Linspace(0, 3.3, 4)
	soses := []fp.SOS{fp.NewSOS(fp.Init1, fp.R(1)), fp.NewSOS(fp.Init1)}
	var factory analysis.Factory
	if pooled {
		factory = analysis.NewPooledSpiceFactory(dram.Default())
	} else {
		factory = analysis.NewSpiceFactory(dram.Default())
	}
	faulty := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var memo *analysis.Memo
		var replay *analysis.ReplayCache
		if pooled {
			memo = analysis.NewMemo()
			replay = analysis.NewReplayCache(factory, o, grp.Nets)
		}
		for _, sos := range soses {
			plane, err := analysis.SweepPlane(analysis.SweepConfig{
				Factory: factory, Open: o, Float: grp, SOS: sos,
				RDefs: rdefs, Us: us,
				Memo: memo, Replay: replay,
			})
			if err != nil {
				b.Fatal(err)
			}
			if f := plane.FaultyFraction(); f > 0 {
				faulty = f
			}
		}
		if replay != nil {
			replay.Close()
		}
		if faulty == 0 {
			b.Fatal("the bit-line open must show faults on this grid")
		}
	}
	b.ReportMetric(faulty, "faulty-fraction")
}

// BenchmarkSpicePlaneSweepNaive is the fresh-build-per-point baseline.
func BenchmarkSpicePlaneSweepNaive(b *testing.B) { spiceSweepBench(b, false) }

// BenchmarkSpicePlaneSweepPooled is the pooled + memoized + replayed
// sweep (the BuildInventory configuration).
func BenchmarkSpicePlaneSweepPooled(b *testing.B) { spiceSweepBench(b, true) }
