module github.com/memtest/partialfaults

go 1.22
