// Package partialfaults is a Go reproduction of Z. Al-Ars and A.J. van
// de Goor, "Modeling Techniques and Tests for Partial Faults in Memory
// Devices" (DATE 2002): fault-primitive modeling for DRAMs, an
// electrical (transient, SPICE-level) and an analytical simulator of a
// DRAM cell-array column with injectable open defects, the (R_def, U)
// fault-analysis method that identifies *partial faults*, the automatic
// completing-operation search, and a march-test engine with the paper's
// March PF test.
//
// This package is the public facade: it re-exports the library's core
// types and constructors so that downstream code does not depend on the
// internal package layout. The deep APIs live in:
//
//   - internal/fp        — fault primitives, SOS notation, FFM taxonomy
//   - internal/dram      — the electrical DRAM column (Figure 2)
//   - internal/behav     — the fast analytical column model
//   - internal/defect    — the nine opens and their floating-line groups
//   - internal/analysis  — plane sweeps, partial-fault rule, completions
//   - internal/march     — march tests, March PF, coverage evaluation
//   - internal/memsim    — functional array with partial-fault injection
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package partialfaults

import (
	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// Fault-primitive modeling (internal/fp).
type (
	// FP is a fault primitive <S/F/R>.
	FP = fp.FP
	// SOS is a sensitizing operation sequence.
	SOS = fp.SOS
	// Op is a memory operation within an SOS.
	Op = fp.Op
	// FFM is a functional fault model (RDF, IRF, TF, …).
	FFM = fp.FFM
)

// ParseFP reads a fault primitive in the paper's notation, e.g.
// "<1v [w0BL] r1v/0/0>".
func ParseFP(s string) (FP, error) { return fp.Parse(s) }

// MustParseFP parses a fault primitive and panics on error.
func MustParseFP(s string) FP { return fp.MustParse(s) }

// CountSingleCellFPs returns the size of the single-cell FP space at
// exactly n operations (Section 4 of the paper).
func CountSingleCellFPs(n int) int { return fp.CountSingleCellFPs(n) }

// DRAM column simulation (internal/dram, internal/behav).
type (
	// Technology holds the electrical and timing parameters of the
	// simulated column.
	Technology = dram.Technology
	// Column is the transient-simulated (SPICE-level) DRAM column.
	Column = dram.Column
	// BehavModel is the fast analytical column model.
	BehavModel = behav.Model
)

// DefaultTechnology returns the calibrated 0.35 µm-class parameters.
func DefaultTechnology() Technology { return dram.Default() }

// Defect-site names of the column models, re-exported for injection via
// Column.SetSiteResistance / BehavModel.SetSiteResistance.
const (
	SiteOpen1Cell    = dram.SiteOpen1Cell
	SiteOpen2RefCell = dram.SiteOpen2RefCell
	SiteOpen3Pre     = dram.SiteOpen3Pre
	SiteOpen4BLPre   = dram.SiteOpen4BLPre
	SiteOpen5BLCell  = dram.SiteOpen5BLCell
	SiteOpen6BLRef   = dram.SiteOpen6BLRef
	SiteOpen7SA      = dram.SiteOpen7SA
	SiteOpen8BLIO    = dram.SiteOpen8BLIO
	SiteOpen9WL      = dram.SiteOpen9WL
	SiteShortCellGnd = dram.SiteShortCellGnd
	SiteShortBLVdd   = dram.SiteShortBLVdd
	SiteBridgeBLBL   = dram.SiteBridgeBLBL
	SiteBridgeCells  = dram.SiteBridgeCells
)

// NewColumn builds an electrical DRAM column. A non-nil error means the
// netlist construction itself is malformed.
func NewColumn(t Technology) (*Column, error) { return dram.NewColumn(t) }

// NewBehavModel builds the analytical column model.
func NewBehavModel() *BehavModel { return behav.New(behav.DefaultParams()) }

// Defects (internal/defect).
type (
	// OpenDefect is one of the paper's nine open locations.
	OpenDefect = defect.Open
	// FloatVar names a floating-voltage variable ("Bit line", …).
	FloatVar = defect.FloatVar
)

// Opens returns the paper's nine open-defect descriptions.
func Opens() []OpenDefect { return defect.Opens() }

// OpenByID returns the open with the given Figure 2 number.
func OpenByID(id int) (OpenDefect, bool) { return defect.ByID(id) }

// Fault analysis (internal/analysis).
type (
	// Plane is an (R_def, U) fault-region sweep result.
	Plane = analysis.Plane
	// SweepConfig parameterizes a plane sweep.
	SweepConfig = analysis.SweepConfig
	// PartialFinding is one identified partial fault.
	PartialFinding = analysis.PartialFinding
	// CompletionConfig parameterizes the completing-operation search.
	CompletionConfig = analysis.CompletionConfig
	// Factory builds devices under analysis.
	Factory = analysis.Factory
)

// NewSpiceFactory returns an analysis factory backed by the electrical
// column.
func NewSpiceFactory(t Technology) Factory { return analysis.NewSpiceFactory(t) }

// NewBehavFactory returns an analysis factory backed by the analytical
// model.
func NewBehavFactory() Factory { return behav.NewFactory(behav.DefaultParams()) }

// SweepPlane simulates an (R_def, U) grid for one SOS.
func SweepPlane(cfg SweepConfig) (*Plane, error) { return analysis.SweepPlane(cfg) }

// IdentifyPartialFaults applies the paper's Section 3 rule to a plane.
func IdentifyPartialFaults(p *Plane) []PartialFinding {
	return analysis.IdentifyPartialFaults(p)
}

// SearchCompletion finds minimal completing operations for a partial FP.
func SearchCompletion(cfg CompletionConfig) (analysis.Completion, error) {
	return analysis.SearchCompletion(cfg)
}

// March testing (internal/march, internal/memsim).
type (
	// MarchTest is a march test in standard notation.
	MarchTest = march.Test
	// MemArray is the functional fault-injectable memory array.
	MemArray = memsim.Array
	// InjectableFault describes a fault to inject into a MemArray.
	InjectableFault = memsim.Fault
)

// MarchPF returns the paper's March PF test.
func MarchPF() MarchTest { return march.MarchPF() }

// MarchTests returns the full test library (classical tests + March PF).
func MarchTests() []MarchTest { return march.All() }

// ParseMarchTest reads march notation like "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}"
// or the ASCII form "{m(w0); u(r0,w1); d(r1,w0)}".
func ParseMarchTest(name, notation string) (MarchTest, error) {
	return march.Parse(name, notation)
}

// NewMemArray builds a rows×cols functional memory array.
func NewMemArray(rows, cols int) *MemArray { return memsim.NewArray(rows, cols) }
